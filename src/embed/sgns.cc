#include "embed/sgns.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/metrics.h"
#include "base/parallel.h"
#include "base/trace.h"
#include "base/validation.h"
#include "linalg/health.h"
#include "linalg/kernels.h"
#include "linalg/kernels_backend.h"

namespace x2vec::embed {
namespace {

constexpr std::string_view kOperation = "SGNS training";

// ---- Checkpoint plumbing shared by the sequential and sharded trainers.

// Binds a checkpoint to one exact run: options (recovery included, since
// it shapes the retry path), data shape and content, noise table and seed.
// Any difference means "resuming would not reproduce the uninterrupted
// run", so LoadLatestCheckpoint skips the file. The sentence content is
// hashed by replaying the source — one dedicated pass, only paid when
// checkpointing is enabled — in the exact field order the materialised
// fingerprint always used, so digests (and therefore existing checkpoint
// files) stay valid across the streaming refactor.
uint64_t SgnsFingerprint(CheckpointKind kind, SentenceSource& source,
                         int64_t num_sentences,
                         const std::vector<double>& noise_weights, int rows_in,
                         int rows_out, bool skipgram_window,
                         const SgnsOptions& options, uint64_t seed) {
  Fnv1a hasher;
  hasher.UpdateU64(static_cast<uint64_t>(kind));
  hasher.UpdateU64(static_cast<uint64_t>(rows_in));
  hasher.UpdateU64(static_cast<uint64_t>(rows_out));
  hasher.UpdateU64(skipgram_window ? 1 : 0);
  hasher.UpdateU64(static_cast<uint64_t>(options.dimension));
  hasher.UpdateU64(static_cast<uint64_t>(options.window));
  hasher.UpdateU64(static_cast<uint64_t>(options.negatives));
  hasher.UpdateU64(static_cast<uint64_t>(options.epochs));
  hasher.UpdateDouble(options.learning_rate);
  hasher.UpdateDouble(options.noise_power);
  hasher.UpdateU64(static_cast<uint64_t>(options.recovery.max_retries));
  hasher.UpdateDouble(options.recovery.lr_backoff);
  hasher.UpdateDouble(options.recovery.clip_norm);
  hasher.UpdateDouble(options.recovery.clip_backoff);
  hasher.UpdateDouble(options.recovery.max_abs);
  hasher.UpdateU64(seed);
  hasher.UpdateU64(static_cast<uint64_t>(num_sentences));
  source.Reset();
  std::vector<int> seq;
  while (source.Next(seq)) {
    hasher.UpdateU64(seq.size());
    for (int token : seq) hasher.UpdateU64(static_cast<uint64_t>(token));
  }
  hasher.UpdateU64(noise_weights.size());
  for (double w : noise_weights) hasher.UpdateDouble(w);
  return hasher.digest();
}

// Positive pairs contributed by one sequence — the per-sequence term of
// PositivePairPrefix, shared so the streaming batch loop prices sequences
// identically to the materialised prefix sums.
int64_t SequencePairs(const std::vector<int>& seq, int window,
                      bool skipgram_window) {
  if (!skipgram_window) return static_cast<int64_t>(seq.size());
  const int len = static_cast<int>(seq.size());
  int64_t pairs = 0;
  for (int pos = 0; pos < len; ++pos) {
    const int lo = std::max(0, pos - window);
    const int hi = std::min(len - 1, pos + window);
    pairs += hi - lo;  // Excludes the centre itself.
  }
  return pairs;
}

// Everything beyond the model needed to make a resumed run bit-identical:
// where the schedule stands, the recovery settings in force, and the RNG
// engine mid-stream. `progress` is the pair counter `seen` for the
// sequential trainer and the epoch `attempt` counter for the sharded one —
// each trainer's single source of schedule truth.
struct SgnsResumeState {
  int next_epoch = 0;
  int64_t progress = 0;
  double lr_scale = 1.0;
  double clip = 0.0;
  int retries = 0;
  std::string rng_state;
};

CheckpointData EncodeSgnsState(CheckpointKind kind, uint64_t fingerprint,
                               const SgnsModel& model,
                               const SgnsResumeState& state) {
  CheckpointData data;
  data.kind = kind;
  data.fingerprint = fingerprint;
  PayloadWriter model_writer;
  model_writer.PutMatrix(model.input);
  model_writer.PutMatrix(model.output);
  data.sections.push_back({"model", model_writer.Take()});
  PayloadWriter trainer_writer;
  trainer_writer.PutI64(state.next_epoch);
  trainer_writer.PutI64(state.progress);
  trainer_writer.PutDouble(state.lr_scale);
  trainer_writer.PutDouble(state.clip);
  trainer_writer.PutI64(state.retries);
  trainer_writer.PutString(state.rng_state);
  data.sections.push_back({"trainer", trainer_writer.Take()});
  return data;
}

Status DecodeSgnsState(const CheckpointData& data, SgnsModel& model,
                       SgnsResumeState& state) {
  const CheckpointSection* model_section = data.Find("model");
  const CheckpointSection* trainer_section = data.Find("trainer");
  if (model_section == nullptr || trainer_section == nullptr) {
    return Status::CorruptedData(
        "checkpoint is missing its 'model' or 'trainer' section");
  }
  PayloadReader model_reader(model_section->payload);
  model.input = model_reader.GetMatrix();
  model.output = model_reader.GetMatrix();
  model_reader.ExpectEnd();
  if (!model_reader.status().ok()) return model_reader.status();
  PayloadReader trainer_reader(trainer_section->payload);
  state.next_epoch = static_cast<int>(trainer_reader.GetI64());
  state.progress = trainer_reader.GetI64();
  state.lr_scale = trainer_reader.GetDouble();
  state.clip = trainer_reader.GetDouble();
  state.retries = static_cast<int>(trainer_reader.GetI64());
  state.rng_state = trainer_reader.GetString();
  trainer_reader.ExpectEnd();
  return trainer_reader.status();
}

// Redraw cap for negative-sampling collisions. With any non-degenerate
// noise table the collision probability per draw is the sampled token's
// own noise mass, so 16 redraws make a dropped negative vanishingly rare
// while still terminating on (near-)single-token noise tables.
constexpr int kNegativeRedraws = 16;

// Draws a negative token distinct from `positive`, redrawing on collision
// up to kNegativeRedraws extra times. Returns -1 when every draw collided
// (only reachable with degenerate noise distributions); the caller then
// trains the slot without that negative. Shared by the sequential and
// sharded trainers so both draw exactly `options.negatives` usable
// negatives per positive pair with identical semantics.
int SampleNegative(const AliasTable& noise, int positive, Rng& rng) {
  int negative = noise.Sample(rng);
  for (int retry = 0; negative == positive && retry < kNegativeRedraws;
       ++retry) {
    X2VEC_METRIC_COUNT("sgns.negative_redraws", 1);
    negative = noise.Sample(rng);
  }
  if (negative == positive) {
    X2VEC_METRIC_COUNT("sgns.negative_exhausted", 1);
    return -1;
  }
  return negative;
}

// One SGD step on the pair (center -> context, label): maximises
// log sigma(u_ctx . v_center) for positives and log sigma(-u . v) for
// negatives. The centre-row update goes into `center_gradient` (applied by
// the caller, possibly clipped); the context row is updated in place.
// Returns the pair's negative log-likelihood for the epoch-loss health
// check. Delegates to the fused span kernel, which keeps the historical
// per-dimension operation order.
double UpdatePair(linalg::Matrix& input, linalg::Matrix& output, int center,
                  int context, double label, double lr,
                  std::vector<double>& center_gradient) {
  return linalg::SgdPairUpdate(input.ConstRowSpan(center),
                               output.RowSpan(context), label, lr,
                               center_gradient);
}

StatusOr<SgnsModel> Train(SentenceSource& source, const StreamStats& stats,
                          const std::vector<double>& noise_weights,
                          int rows_in, int rows_out, bool skipgram_window,
                          const SgnsOptions& options, Rng& rng,
                          Budget& budget) {
  if (Status status = ValidateSgnsOptions(options); !status.ok()) {
    return status;
  }
  if (Status status = ValidateCheckpointOptions(options.checkpoint);
      !status.ok()) {
    return status;
  }
  if (budget.Exhausted()) return budget.ExhaustedError(kOperation);
  X2VEC_CHECK_GT(rows_in, 0);
  X2VEC_CHECK_GT(rows_out, 0);
  X2VEC_METRIC_GAUGE("kernels.backend",
                     static_cast<double>(linalg::ActiveKernelBackend()));
  const CheckpointOptions& ckpt = options.checkpoint;
  constexpr CheckpointKind kKind = CheckpointKind::kSgnsSequential;
  const uint64_t fingerprint =
      ckpt.enabled()
          ? SgnsFingerprint(kKind, source, stats.num_sentences, noise_weights,
                            rows_in, rows_out, skipgram_window, options,
                            /*seed=*/0)
          : 0;

  SgnsModel model;
  const double init = 0.5 / options.dimension;
  const RecoveryPolicy& recovery = options.recovery;
  double lr_scale = 1.0;  // Halved on each numeric recovery.
  double clip = recovery.clip_norm;
  int retries = 0;
  int64_t seen = 0;
  int start_epoch = 0;

  bool resumed = false;
  if (ckpt.enabled()) {
    StatusOr<std::optional<CheckpointData>> loaded =
        LoadLatestCheckpoint(ckpt, kKind, fingerprint);
    if (!loaded.ok()) return loaded.status();
    if (loaded->has_value()) {
      SgnsResumeState state;
      if (Status status = DecodeSgnsState(**loaded, model, state);
          !status.ok()) {
        return status;
      }
      if (model.input.rows() != rows_in ||
          model.input.cols() != options.dimension ||
          model.output.rows() != rows_out ||
          model.output.cols() != options.dimension) {
        return Status::CorruptedData(
            "checkpoint model shape does not match this run's "
            "(rows, dimension)");
      }
      // Restoring the engine replays the exact draw sequence the
      // uninterrupted run would have continued with.
      if (Status status = rng.LoadEngineState(state.rng_state); !status.ok()) {
        return status;
      }
      start_epoch = state.next_epoch;
      seen = state.progress;
      lr_scale = state.lr_scale;
      clip = state.clip;
      retries = state.retries;
      resumed = true;
      X2VEC_METRIC_COUNT("checkpoint.resumes", 1);
    }
  }
  if (!resumed) {
    model.input = linalg::Matrix(rows_in, options.dimension);
    for (double& v : model.input.mutable_data()) {
      v = UniformReal(rng, -init, init);
    }
    model.output = linalg::Matrix(rows_out, options.dimension);  // Zeros.
  }

  const AliasTable noise(noise_weights);

  // Exact window-clipped positive pairs per epoch, for the linear LR
  // decay — the same accounting TrainSharded uses, so both trainers see
  // one schedule. The caller's single streaming counting pass supplies the
  // total; each epoch is one fresh pass over the source.
  const int64_t pairs_per_epoch = stats.pairs_per_epoch;
  const int64_t total_pairs =
      std::max<int64_t>(1, pairs_per_epoch * options.epochs);

  trace::Span train_span("sgns.train");
  std::vector<double> center_gradient(options.dimension);
  std::vector<int> seq;
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    trace::Span epoch_span("sgns.epoch");
    double epoch_loss = 0.0;
    source.Reset();
    int64_t s = 0;
    while (source.Next(seq)) {
      for (size_t pos = 0; pos < seq.size(); ++pos) {
        const double progress = static_cast<double>(seen) / total_pairs;
        const double lr = options.learning_rate * lr_scale *
                          std::max(1e-4, 1.0 - progress);
        if (skipgram_window) {
          const int center = seq[pos];
          const int lo = std::max<int>(0, static_cast<int>(pos) -
                                              options.window);
          const int hi = std::min<int>(static_cast<int>(seq.size()) - 1,
                                       static_cast<int>(pos) + options.window);
          for (int other = lo; other <= hi; ++other) {
            if (other == static_cast<int>(pos)) continue;
            if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
            X2VEC_METRIC_COUNT("sgns.pairs", 1);
            std::fill(center_gradient.begin(), center_gradient.end(), 0.0);
            epoch_loss += UpdatePair(model.input, model.output, center,
                                     seq[other], 1.0, lr, center_gradient);
            for (int k = 0; k < options.negatives; ++k) {
              const int negative = SampleNegative(noise, seq[other], rng);
              if (negative < 0) continue;
              X2VEC_METRIC_COUNT("sgns.negatives", 1);
              epoch_loss += UpdatePair(model.input, model.output, center,
                                       negative, 0.0, lr, center_gradient);
            }
            linalg::ClipGradient(center_gradient, clip);
            linalg::Axpy(1.0, center_gradient, model.input.RowSpan(center));
            ++seen;
          }
        } else {
          // PV-DBOW: the document id is the centre, the token the context.
          if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
          X2VEC_METRIC_COUNT("sgns.pairs", 1);
          const int doc = static_cast<int>(s);
          std::fill(center_gradient.begin(), center_gradient.end(), 0.0);
          epoch_loss += UpdatePair(model.input, model.output, doc, seq[pos],
                                   1.0, lr, center_gradient);
          for (int k = 0; k < options.negatives; ++k) {
            const int negative = SampleNegative(noise, seq[pos], rng);
            if (negative < 0) continue;
            X2VEC_METRIC_COUNT("sgns.negatives", 1);
            epoch_loss += UpdatePair(model.input, model.output, doc, negative,
                                     0.0, lr, center_gradient);
          }
          linalg::ClipGradient(center_gradient, clip);
          linalg::Axpy(1.0, center_gradient, model.input.RowSpan(doc));
          ++seen;
        }
      }
      ++s;
    }

    epoch_span.AddWork(pairs_per_epoch);
    // LR the next pair would train at, from the exact schedule position;
    // `seen` advances across retried epochs exactly like the sharded
    // trainer's attempt counter, so both trainers report identical values
    // at matching epoch boundaries.
    X2VEC_METRIC_GAUGE("sgns.lr_epoch_end",
                       options.learning_rate * lr_scale *
                           std::max(1e-4, 1.0 - static_cast<double>(seen) /
                                                    total_pairs));

    // Per-epoch numeric health check with bounded self-healing.
    const bool healthy = std::isfinite(epoch_loss) &&
                         linalg::MatrixHealthy(model.input, recovery.max_abs) &&
                         linalg::MatrixHealthy(model.output, recovery.max_abs);
    if (!healthy) {
      if (++retries > recovery.max_retries) {
        return Status::Internal(
            "SGNS training diverged (non-finite or runaway parameters) and "
            "exhausted " +
            std::to_string(recovery.max_retries) + " recovery retries");
      }
      X2VEC_METRIC_COUNT("sgns.recovery_retries", 1);
      lr_scale *= recovery.lr_backoff;
      clip *= recovery.clip_backoff;
      linalg::ReseedUnhealthyRows(model.input, init, recovery.max_abs, rng);
      linalg::ReseedUnhealthyRows(model.output, init, recovery.max_abs, rng);
      --epoch;  // Retry the failed epoch with the gentler settings.
      continue;
    }

    // Epoch barrier reached with healthy parameters: persist everything a
    // resumed run needs to finish bit-identically. A save failure is a
    // typed error, not a silent skip — the caller asked for durability.
    if (ckpt.enabled() && (epoch + 1) % ckpt.every_n_epochs == 0) {
      SgnsResumeState state{epoch + 1, seen, lr_scale, clip, retries,
                            rng.SaveEngineState()};
      if (Status status = SaveCheckpoint(
              ckpt, epoch + 1, EncodeSgnsState(kKind, fingerprint, model, state));
          !status.ok()) {
        return status;
      }
    }
  }
  train_span.AddWork(seen);
  return model;
}

// ---- Sharded deterministic parallel trainer.

constexpr std::string_view kShardOperation = "sharded SGNS training";

// Sequences per synchronous mini-batch: small enough that parameters stay
// fresh (close to sequential SGD on test-scale corpora), large enough to
// keep every worker busy within a batch.
constexpr int64_t kShardBatchSequences = 32;

// Per-sequence gradient shard: sparse row deltas against the batch-start
// parameters (flat touched-row buffers, no per-sequence allocation in
// steady state), plus the sequence's loss contribution. Applied serially
// in sequence order after the batch's parallel compute; within a shard the
// touched rows are applied in first-touch order, which is fixed by the
// sequence data and bit-equivalent to any other fixed order because
// distinct rows update disjoint memory.
struct ShardDelta {
  linalg::RowDeltaBuffer input_rows;
  linalg::RowDeltaBuffer output_rows;
  double loss = 0.0;

  void Reset(int rows_in, int rows_out, int dim) {
    input_rows.Reset(rows_in, dim);
    output_rows.Reset(rows_out, dim);
    loss = 0.0;
  }
};

// Frozen-parameter analogue of UpdatePair: the score is read from the
// batch-start matrices and both updates land in the shard instead of the
// live parameters. Returns the pair's negative log-likelihood.
double ShardPair(const linalg::Matrix& input, const linalg::Matrix& output,
                 int center, int context, double label, double lr,
                 std::vector<double>& center_gradient, ShardDelta& delta) {
  return linalg::SgdPairUpdateDelta(
      input.ConstRowSpan(center), output.ConstRowSpan(context), label, lr,
      center_gradient, delta.output_rows.Accumulator(context));
}

StatusOr<SgnsModel> TrainSharded(SentenceSource& source,
                                 const StreamStats& stats,
                                 const std::vector<double>& noise_weights,
                                 int rows_in, int rows_out,
                                 bool skipgram_window,
                                 const SgnsOptions& options, uint64_t seed,
                                 Budget& budget) {
  if (Status status = ValidateSgnsOptions(options); !status.ok()) {
    return status;
  }
  if (Status status = ValidateCheckpointOptions(options.checkpoint);
      !status.ok()) {
    return status;
  }
  if (budget.Exhausted()) return budget.ExhaustedError(kShardOperation);
  X2VEC_CHECK_GT(rows_in, 0);
  X2VEC_CHECK_GT(rows_out, 0);
  X2VEC_METRIC_GAUGE("kernels.backend",
                     static_cast<double>(linalg::ActiveKernelBackend()));
  const int dim = options.dimension;
  const CheckpointOptions& ckpt = options.checkpoint;
  constexpr CheckpointKind kKind = CheckpointKind::kSgnsSharded;
  const uint64_t fingerprint =
      ckpt.enabled()
          ? SgnsFingerprint(kKind, source, stats.num_sentences, noise_weights,
                            rows_in, rows_out, skipgram_window, options, seed)
          : 0;

  SgnsModel model;
  const double init = 0.5 / dim;
  const RecoveryPolicy& recovery = options.recovery;
  double lr_scale = 1.0;  // Halved on each numeric recovery.
  double clip = recovery.clip_norm;
  int retries = 0;
  Rng recovery_rng = Rng::Fork(seed, ~uint64_t{0});
  // Epoch attempts (retries included) drive both the noise streams and the
  // schedule offset, mirroring the sequential trainer's ever-advancing
  // generator and pair counter across retried epochs.
  int64_t attempt = 0;
  int start_epoch = 0;

  bool resumed = false;
  if (ckpt.enabled()) {
    StatusOr<std::optional<CheckpointData>> loaded =
        LoadLatestCheckpoint(ckpt, kKind, fingerprint);
    if (!loaded.ok()) return loaded.status();
    if (loaded->has_value()) {
      SgnsResumeState state;
      if (Status status = DecodeSgnsState(**loaded, model, state);
          !status.ok()) {
        return status;
      }
      if (model.input.rows() != rows_in || model.input.cols() != dim ||
          model.output.rows() != rows_out || model.output.cols() != dim) {
        return Status::CorruptedData(
            "checkpoint model shape does not match this run's "
            "(rows, dimension)");
      }
      if (Status status = recovery_rng.LoadEngineState(state.rng_state);
          !status.ok()) {
        return status;
      }
      start_epoch = state.next_epoch;
      attempt = state.progress;
      lr_scale = state.lr_scale;
      clip = state.clip;
      retries = state.retries;
      resumed = true;
      X2VEC_METRIC_COUNT("checkpoint.resumes", 1);
    }
  }
  if (!resumed) {
    model.input = linalg::Matrix(rows_in, dim);
    // Stream 0 of the seed initialises; streams of MixSeed(seed, 1 + attempt)
    // drive the per-sequence noise draws of each epoch attempt; the ~0
    // stream reseeds rows during numeric recovery.
    Rng init_rng = Rng::Fork(seed, 0);
    for (double& v : model.input.mutable_data()) {
      v = UniformReal(init_rng, -init, init);
    }
    model.output = linalg::Matrix(rows_out, dim);  // Zeros.
  }

  const AliasTable noise(noise_weights);

  // The exact pairs-per-epoch total from the caller's streaming counting
  // pass: every pair's slot in the global learning-rate schedule is still
  // known up front — within a batch from the per-batch prefix sums below,
  // across batches from the running pair_base — so shards agree on the
  // schedule without a shared counter and without materialising the
  // corpus-wide prefix array.
  const int64_t pairs_per_epoch = stats.pairs_per_epoch;
  const int64_t total_pairs =
      std::max<int64_t>(1, pairs_per_epoch * options.epochs);

  BudgetGate gate(budget);
  trace::Span train_span("sgns.train_sharded");
  // Shard storage reused across batches and epochs: Reset() keeps each
  // buffer's capacity, so steady-state training allocates nothing per
  // sequence. The batch window is the only materialised slice of the
  // stream; Next() refills each slot in place, reusing its capacity.
  std::vector<ShardDelta> deltas(kShardBatchSequences);
  std::vector<std::vector<int>> batch(kShardBatchSequences);
  std::vector<int64_t> batch_prefix(kShardBatchSequences + 1, 0);
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch, ++attempt) {
    trace::Span epoch_span("sgns.epoch");
    const uint64_t epoch_base = MixSeed(seed, 1 + static_cast<uint64_t>(attempt));
    const int64_t seen_base = attempt * pairs_per_epoch;
    double epoch_loss = 0.0;
    Status epoch_status = Status::Ok();
    source.Reset();
    int64_t batch_lo = 0;   // Global index of the batch's first sequence.
    int64_t pair_base = 0;  // Positive pairs in sequences [0, batch_lo).
    bool more = true;
    while (more && epoch_status.ok()) {
      // Pull the next synchronous mini-batch. Batch boundaries fall at the
      // same sequence indices as the historical indexed loop: [0, 32),
      // [32, 64), ...
      int64_t batch_size = 0;
      while (batch_size < kShardBatchSequences &&
             source.Next(batch[batch_size])) {
        ++batch_size;
      }
      more = batch_size == kShardBatchSequences;
      if (batch_size == 0) break;
      // Per-batch positive-pair prefix: the global schedule slot of
      // sequence batch_lo + b is seen_base + pair_base + batch_prefix[b],
      // exactly the value the corpus-wide PositivePairPrefix used to give.
      for (int64_t b = 0; b < batch_size; ++b) {
        batch_prefix[b + 1] =
            batch_prefix[b] +
            SequencePairs(batch[b], options.window, skipgram_window);
      }
      epoch_status = ParallelFor(
          batch_size, 0, [&](int64_t lo, int64_t hi) {
            std::vector<double> center_gradient(dim);
            for (int64_t b = lo; b < hi; ++b) {
              const int64_t s = batch_lo + b;
              const std::vector<int>& seq = batch[b];
              const int64_t seq_pairs = batch_prefix[b + 1] - batch_prefix[b];
              if (seq_pairs > 0 && !gate.Spend(seq_pairs)) {
                return gate.ExhaustedError(kShardOperation);
              }
              ShardDelta& delta = deltas[b];
              delta.Reset(rows_in, rows_out, dim);
              Rng rng = Rng::Fork(epoch_base, static_cast<uint64_t>(s));
              int64_t seen = seen_base + pair_base + batch_prefix[b];
              const int len = static_cast<int>(seq.size());
              for (int pos = 0; pos < len; ++pos) {
                if (skipgram_window) {
                  const int center = seq[pos];
                  const int wlo = std::max(0, pos - options.window);
                  const int whi = std::min(len - 1, pos + options.window);
                  for (int other = wlo; other <= whi; ++other) {
                    if (other == pos) continue;
                    X2VEC_METRIC_COUNT("sgns.pairs", 1);
                    const double progress =
                        static_cast<double>(seen) / total_pairs;
                    const double lr = options.learning_rate * lr_scale *
                                      std::max(1e-4, 1.0 - progress);
                    std::fill(center_gradient.begin(), center_gradient.end(),
                              0.0);
                    delta.loss +=
                        ShardPair(model.input, model.output, center,
                                  seq[other], 1.0, lr, center_gradient, delta);
                    for (int k = 0; k < options.negatives; ++k) {
                      const int negative =
                          SampleNegative(noise, seq[other], rng);
                      if (negative < 0) continue;
                      X2VEC_METRIC_COUNT("sgns.negatives", 1);
                      delta.loss +=
                          ShardPair(model.input, model.output, center,
                                    negative, 0.0, lr, center_gradient, delta);
                    }
                    linalg::ClipGradient(center_gradient, clip);
                    linalg::Axpy(1.0, center_gradient,
                                 delta.input_rows.Accumulator(center));
                    ++seen;
                  }
                } else {
                  const int doc = static_cast<int>(s);
                  X2VEC_METRIC_COUNT("sgns.pairs", 1);
                  const double progress =
                      static_cast<double>(seen) / total_pairs;
                  const double lr = options.learning_rate * lr_scale *
                                    std::max(1e-4, 1.0 - progress);
                  std::fill(center_gradient.begin(), center_gradient.end(),
                            0.0);
                  delta.loss +=
                      ShardPair(model.input, model.output, doc, seq[pos], 1.0,
                                lr, center_gradient, delta);
                  for (int k = 0; k < options.negatives; ++k) {
                    const int negative = SampleNegative(noise, seq[pos], rng);
                    if (negative < 0) continue;
                    X2VEC_METRIC_COUNT("sgns.negatives", 1);
                    delta.loss +=
                        ShardPair(model.input, model.output, doc, negative,
                                  0.0, lr, center_gradient, delta);
                  }
                  linalg::ClipGradient(center_gradient, clip);
                  linalg::Axpy(1.0, center_gradient,
                               delta.input_rows.Accumulator(doc));
                  ++seen;
                }
              }
            }
            return Status::Ok();
          });
      if (!epoch_status.ok()) break;
      // Serial apply in sequence order: the fold order is fixed by the
      // data, not by which worker produced which shard.
      for (int64_t b = 0; b < batch_size; ++b) {
        ShardDelta& d = deltas[b];
        epoch_loss += d.loss;
        const std::vector<int>& in_rows = d.input_rows.touched();
        for (size_t t = 0; t < in_rows.size(); ++t) {
          linalg::Axpy(1.0, d.input_rows.Slot(static_cast<int>(t)),
                       model.input.RowSpan(in_rows[t]));
        }
        const std::vector<int>& out_rows = d.output_rows.touched();
        for (size_t t = 0; t < out_rows.size(); ++t) {
          linalg::Axpy(1.0, d.output_rows.Slot(static_cast<int>(t)),
                       model.output.RowSpan(out_rows[t]));
        }
      }
      batch_lo += batch_size;
      pair_base += batch_prefix[batch_size];
    }
    if (!epoch_status.ok()) return epoch_status;

    epoch_span.AddWork(pairs_per_epoch);
    train_span.AddWork(pairs_per_epoch);
    // Same exact-schedule epoch-end LR as the sequential trainer: the
    // attempt counter advances across retries exactly like its `seen`.
    X2VEC_METRIC_GAUGE(
        "sgns.lr_epoch_end",
        options.learning_rate * lr_scale *
            std::max(1e-4, 1.0 - static_cast<double>((attempt + 1) *
                                                     pairs_per_epoch) /
                                     total_pairs));

    // Per-epoch numeric health check with bounded self-healing, as in the
    // sequential trainer.
    const bool healthy = std::isfinite(epoch_loss) &&
                         linalg::MatrixHealthy(model.input, recovery.max_abs) &&
                         linalg::MatrixHealthy(model.output, recovery.max_abs);
    if (!healthy) {
      if (++retries > recovery.max_retries) {
        return Status::Internal(
            "sharded SGNS training diverged (non-finite or runaway "
            "parameters) and exhausted " +
            std::to_string(recovery.max_retries) + " recovery retries");
      }
      X2VEC_METRIC_COUNT("sgns.recovery_retries", 1);
      lr_scale *= recovery.lr_backoff;
      clip *= recovery.clip_backoff;
      linalg::ReseedUnhealthyRows(model.input, init, recovery.max_abs,
                                  recovery_rng);
      linalg::ReseedUnhealthyRows(model.output, init, recovery.max_abs,
                                  recovery_rng);
      --epoch;  // Retry the failed epoch with the gentler settings.
      continue;
    }

    // Healthy epoch barrier: persist the resume state. `attempt + 1` is
    // the attempt counter at the next epoch's start (the for-step has not
    // run yet), so a resumed run forks the same per-sequence streams the
    // uninterrupted run would have.
    if (ckpt.enabled() && (epoch + 1) % ckpt.every_n_epochs == 0) {
      SgnsResumeState state{epoch + 1, attempt + 1, lr_scale, clip, retries,
                            recovery_rng.SaveEngineState()};
      if (Status status = SaveCheckpoint(
              ckpt, epoch + 1, EncodeSgnsState(kKind, fingerprint, model, state));
          !status.ok()) {
        return status;
      }
    }
  }
  return model;
}

}  // namespace

std::vector<int64_t> PositivePairPrefix(
    const std::vector<std::vector<int>>& sequences, int window,
    bool skipgram_window) {
  std::vector<int64_t> prefix(sequences.size() + 1, 0);
  for (size_t s = 0; s < sequences.size(); ++s) {
    const std::vector<int>& seq = sequences[s];
    int64_t pairs = 0;
    if (skipgram_window) {
      const int len = static_cast<int>(seq.size());
      for (int pos = 0; pos < len; ++pos) {
        const int lo = std::max(0, pos - window);
        const int hi = std::min(len - 1, pos + window);
        pairs += hi - lo;  // Excludes the centre itself.
      }
    } else {
      pairs = static_cast<int64_t>(seq.size());
    }
    prefix[s + 1] = prefix[s] + pairs;
  }
  return prefix;
}

Status ValidateSgnsOptions(const SgnsOptions& options) {
  return ValidateOptions({
      {"dimension", static_cast<double>(options.dimension),
       OptionCheck::Rule::kPositive},
      {"window", static_cast<double>(options.window),
       OptionCheck::Rule::kPositive},
      {"negatives", static_cast<double>(options.negatives),
       OptionCheck::Rule::kPositive},
      // Zero epochs is a valid "untrained baseline" request.
      {"epochs", static_cast<double>(options.epochs),
       OptionCheck::Rule::kNonNegative},
      {"learning_rate", options.learning_rate,
       OptionCheck::Rule::kPositiveFinite},
      {"noise_power", options.noise_power, OptionCheck::Rule::kFinite},
  });
}

SgnsModel TrainSgns(const Corpus& corpus, const SgnsOptions& options,
                    Rng& rng) {
  Budget unlimited;
  return *TrainSgnsBudgeted(corpus, options, rng, unlimited);
}

SgnsModel TrainPvDbow(const std::vector<std::vector<int>>& documents,
                      int vocab_size, const SgnsOptions& options, Rng& rng) {
  Budget unlimited;
  return *TrainPvDbowBudgeted(documents, vocab_size, options, rng, unlimited);
}

StatusOr<SgnsModel> TrainSgnsBudgeted(const Corpus& corpus,
                                      const SgnsOptions& options, Rng& rng,
                                      Budget& budget) {
  if (corpus.vocab.size() == 0) {
    return Status::InvalidArgument("SGNS training needs a non-empty vocabulary");
  }
  // The adapter replays the materialised corpus verbatim — same sentences,
  // same order, same draws — so this path stays bit-identical to the
  // historical in-memory trainer.
  CorpusSource source(corpus.sentences);
  const StreamStats stats = CountStream(source, options.window,
                                        /*skipgram_window=*/true,
                                        corpus.vocab.size());
  return Train(source, stats,
               corpus.vocab.NoiseDistribution(options.noise_power),
               corpus.vocab.size(), corpus.vocab.size(),
               /*skipgram_window=*/true, options, rng, budget);
}

StatusOr<std::vector<double>> PvDbowNoiseDistribution(
    const std::vector<std::vector<int>>& documents, int vocab_size,
    double noise_power) {
  if (vocab_size <= 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs a positive vocab_size");
  }
  if (documents.empty()) {
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one document");
  }
  std::vector<double> counts(vocab_size, 0.0);
  int64_t total_tokens = 0;
  for (const auto& doc : documents) {
    for (int token : doc) {
      X2VEC_CHECK(token >= 0 && token < vocab_size);
      counts[token] += 1.0;
      ++total_tokens;
    }
  }
  if (total_tokens == 0) {
    // All documents empty: an all-zero noise table cannot be sampled from,
    // and there are no positive pairs to train on either.
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one token across the documents");
  }
  // Unigram^power on the raw counts — the same convention as
  // Vocabulary::NoiseDistribution: pow(0, power) == 0, so a token with no
  // occurrences has zero probability of being drawn as a negative. (The
  // historical clamp max(c, 1e-9) gave never-observed tokens nonzero noise
  // weight, silently diverging from the SGNS path.)
  for (double& c : counts) c = std::pow(c, noise_power);
  return counts;
}

StatusOr<SgnsModel> TrainPvDbowBudgeted(
    const std::vector<std::vector<int>>& documents, int vocab_size,
    const SgnsOptions& options, Rng& rng, Budget& budget) {
  StatusOr<std::vector<double>> counts =
      PvDbowNoiseDistribution(documents, vocab_size, options.noise_power);
  if (!counts.ok()) return counts.status();
  CorpusSource source(documents);
  const StreamStats stats = CountStream(source, options.window,
                                        /*skipgram_window=*/false, vocab_size);
  return Train(source, stats, *counts, static_cast<int>(documents.size()),
               vocab_size, /*skipgram_window=*/false, options, rng, budget);
}

StatusOr<SgnsModel> TrainSgnsSharded(const Corpus& corpus,
                                     const SgnsOptions& options, uint64_t seed,
                                     Budget& budget) {
  if (corpus.vocab.size() == 0) {
    return Status::InvalidArgument("SGNS training needs a non-empty vocabulary");
  }
  CorpusSource source(corpus.sentences);
  const StreamStats stats = CountStream(source, options.window,
                                        /*skipgram_window=*/true,
                                        corpus.vocab.size());
  return TrainSharded(source, stats,
                      corpus.vocab.NoiseDistribution(options.noise_power),
                      corpus.vocab.size(), corpus.vocab.size(),
                      /*skipgram_window=*/true, options, seed, budget);
}

StatusOr<SgnsModel> TrainPvDbowSharded(
    const std::vector<std::vector<int>>& documents, int vocab_size,
    const SgnsOptions& options, uint64_t seed, Budget& budget) {
  StatusOr<std::vector<double>> counts =
      PvDbowNoiseDistribution(documents, vocab_size, options.noise_power);
  if (!counts.ok()) return counts.status();
  CorpusSource source(documents);
  const StreamStats stats = CountStream(source, options.window,
                                        /*skipgram_window=*/false, vocab_size);
  return TrainSharded(source, stats, *counts,
                      static_cast<int>(documents.size()), vocab_size,
                      /*skipgram_window=*/false, options, seed, budget);
}

StatusOr<SgnsModel> TrainSgnsStreaming(SentenceSource& source,
                                       const StreamStats& stats,
                                       const std::vector<double>& noise_weights,
                                       const SgnsOptions& options, Rng& rng,
                                       Budget& budget) {
  if (noise_weights.empty()) {
    return Status::InvalidArgument(
        "streaming SGNS training needs a non-empty noise table");
  }
  const int rows = static_cast<int>(noise_weights.size());
  if (static_cast<int64_t>(stats.token_counts.size()) > rows) {
    return Status::InvalidArgument(
        "streamed token id exceeds the noise-table size");
  }
  return Train(source, stats, noise_weights, rows, rows,
               /*skipgram_window=*/true, options, rng, budget);
}

StatusOr<SgnsModel> TrainSgnsStreaming(SentenceSource& source,
                                       const std::vector<double>& noise_weights,
                                       const SgnsOptions& options, Rng& rng,
                                       Budget& budget) {
  if (noise_weights.empty()) {
    return Status::InvalidArgument(
        "streaming SGNS training needs a non-empty noise table");
  }
  const StreamStats stats =
      CountStream(source, options.window, /*skipgram_window=*/true,
                  static_cast<int>(noise_weights.size()));
  return TrainSgnsStreaming(source, stats, noise_weights, options, rng,
                            budget);
}

StatusOr<SgnsModel> TrainSgnsShardedStreaming(
    SentenceSource& source, const StreamStats& stats,
    const std::vector<double>& noise_weights, const SgnsOptions& options,
    uint64_t seed, Budget& budget) {
  if (noise_weights.empty()) {
    return Status::InvalidArgument(
        "streaming SGNS training needs a non-empty noise table");
  }
  const int rows = static_cast<int>(noise_weights.size());
  if (static_cast<int64_t>(stats.token_counts.size()) > rows) {
    return Status::InvalidArgument(
        "streamed token id exceeds the noise-table size");
  }
  return TrainSharded(source, stats, noise_weights, rows, rows,
                      /*skipgram_window=*/true, options, seed, budget);
}

StatusOr<SgnsModel> TrainSgnsShardedStreaming(
    SentenceSource& source, const std::vector<double>& noise_weights,
    const SgnsOptions& options, uint64_t seed, Budget& budget) {
  if (noise_weights.empty()) {
    return Status::InvalidArgument(
        "streaming SGNS training needs a non-empty noise table");
  }
  const StreamStats stats =
      CountStream(source, options.window, /*skipgram_window=*/true,
                  static_cast<int>(noise_weights.size()));
  return TrainSgnsShardedStreaming(source, stats, noise_weights, options,
                                   seed, budget);
}

StatusOr<SgnsModel> TrainPvDbowStreaming(SentenceSource& source,
                                         int vocab_size,
                                         const SgnsOptions& options, Rng& rng,
                                         Budget& budget) {
  if (vocab_size <= 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs a positive vocab_size");
  }
  const StreamStats stats = CountStream(source, options.window,
                                        /*skipgram_window=*/false, vocab_size);
  if (stats.num_sentences == 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one document");
  }
  if (static_cast<int64_t>(stats.token_counts.size()) > vocab_size) {
    return Status::InvalidArgument(
        "streamed PV-DBOW token id exceeds vocab_size");
  }
  if (stats.total_tokens == 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one token across the documents");
  }
  X2VEC_CHECK_LE(stats.num_sentences, std::numeric_limits<int>::max());
  return Train(
      source, stats,
      NoiseFromCounts(stats.token_counts, vocab_size, options.noise_power),
      static_cast<int>(stats.num_sentences), vocab_size,
      /*skipgram_window=*/false, options, rng, budget);
}

StatusOr<SgnsModel> TrainPvDbowShardedStreaming(SentenceSource& source,
                                                int vocab_size,
                                                const SgnsOptions& options,
                                                uint64_t seed, Budget& budget) {
  if (vocab_size <= 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs a positive vocab_size");
  }
  const StreamStats stats = CountStream(source, options.window,
                                        /*skipgram_window=*/false, vocab_size);
  if (stats.num_sentences == 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one document");
  }
  if (static_cast<int64_t>(stats.token_counts.size()) > vocab_size) {
    return Status::InvalidArgument(
        "streamed PV-DBOW token id exceeds vocab_size");
  }
  if (stats.total_tokens == 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one token across the documents");
  }
  X2VEC_CHECK_LE(stats.num_sentences, std::numeric_limits<int>::max());
  return TrainSharded(
      source, stats,
      NoiseFromCounts(stats.token_counts, vocab_size, options.noise_power),
      static_cast<int>(stats.num_sentences), vocab_size,
      /*skipgram_window=*/false, options, seed, budget);
}

}  // namespace x2vec::embed
