#include "embed/sgns.h"

#include <algorithm>
#include <cmath>

#include "base/validation.h"
#include "linalg/health.h"

namespace x2vec::embed {
namespace {

constexpr std::string_view kOperation = "SGNS training";

double Sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

// One SGD step on the pair (center -> context, label): maximises
// log sigma(u_ctx . v_center) for positives and log sigma(-u . v) for
// negatives. The centre-row update goes into `center_gradient` (applied by
// the caller, possibly clipped); the context row is updated in place.
// Returns the pair's negative log-likelihood for the epoch-loss health
// check.
double UpdatePair(linalg::Matrix& input, linalg::Matrix& output, int center,
                  int context, double label, double lr,
                  std::vector<double>& center_gradient) {
  const int dim = input.cols();
  double score = 0.0;
  for (int d = 0; d < dim; ++d) score += input(center, d) * output(context, d);
  const double sig = Sigmoid(score);
  const double gradient = (label - sig) * lr;
  for (int d = 0; d < dim; ++d) {
    center_gradient[d] += gradient * output(context, d);
    output(context, d) += gradient * input(center, d);
  }
  return label > 0.5 ? -std::log(std::max(sig, 1e-12))
                     : -std::log(std::max(1.0 - sig, 1e-12));
}

StatusOr<SgnsModel> Train(const std::vector<std::vector<int>>& sequences,
                          const std::vector<double>& noise_weights,
                          int rows_in, int rows_out, bool skipgram_window,
                          const SgnsOptions& options, Rng& rng,
                          Budget& budget) {
  if (Status status = ValidateSgnsOptions(options); !status.ok()) {
    return status;
  }
  if (budget.Exhausted()) return budget.ExhaustedError(kOperation);
  X2VEC_CHECK_GT(rows_in, 0);
  X2VEC_CHECK_GT(rows_out, 0);
  SgnsModel model;
  const double init = 0.5 / options.dimension;
  model.input = linalg::Matrix(rows_in, options.dimension);
  for (double& v : model.input.mutable_data()) {
    v = UniformReal(rng, -init, init);
  }
  model.output = linalg::Matrix(rows_out, options.dimension);  // Zeros.

  const AliasTable noise(noise_weights);

  // Total number of positive pairs per epoch, for the linear LR decay.
  int64_t pairs_per_epoch = 0;
  if (skipgram_window) {
    for (const auto& seq : sequences) {
      pairs_per_epoch += 2LL * options.window * seq.size();  // Upper bound.
    }
  } else {
    for (const auto& seq : sequences) pairs_per_epoch += seq.size();
  }
  const int64_t total_pairs =
      std::max<int64_t>(1, pairs_per_epoch * options.epochs);

  const RecoveryPolicy& recovery = options.recovery;
  double lr_scale = 1.0;  // Halved on each numeric recovery.
  double clip = recovery.clip_norm;
  int retries = 0;

  int64_t seen = 0;
  std::vector<double> center_gradient(options.dimension);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (size_t s = 0; s < sequences.size(); ++s) {
      const std::vector<int>& seq = sequences[s];
      for (size_t pos = 0; pos < seq.size(); ++pos) {
        const double progress = static_cast<double>(seen) / total_pairs;
        const double lr = options.learning_rate * lr_scale *
                          std::max(1e-4, 1.0 - progress);
        if (skipgram_window) {
          const int center = seq[pos];
          const int lo = std::max<int>(0, static_cast<int>(pos) -
                                              options.window);
          const int hi = std::min<int>(static_cast<int>(seq.size()) - 1,
                                       static_cast<int>(pos) + options.window);
          for (int other = lo; other <= hi; ++other) {
            if (other == static_cast<int>(pos)) continue;
            if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
            std::fill(center_gradient.begin(), center_gradient.end(), 0.0);
            epoch_loss += UpdatePair(model.input, model.output, center,
                                     seq[other], 1.0, lr, center_gradient);
            for (int k = 0; k < options.negatives; ++k) {
              int negative = noise.Sample(rng);
              if (negative == seq[other]) continue;
              epoch_loss += UpdatePair(model.input, model.output, center,
                                       negative, 0.0, lr, center_gradient);
            }
            linalg::ClipGradient(center_gradient, clip);
            for (int d = 0; d < options.dimension; ++d) {
              model.input(center, d) += center_gradient[d];
            }
            ++seen;
          }
        } else {
          // PV-DBOW: the document id is the centre, the token the context.
          if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
          const int doc = static_cast<int>(s);
          std::fill(center_gradient.begin(), center_gradient.end(), 0.0);
          epoch_loss += UpdatePair(model.input, model.output, doc, seq[pos],
                                   1.0, lr, center_gradient);
          for (int k = 0; k < options.negatives; ++k) {
            int negative = noise.Sample(rng);
            if (negative == seq[pos]) continue;
            epoch_loss += UpdatePair(model.input, model.output, doc, negative,
                                     0.0, lr, center_gradient);
          }
          linalg::ClipGradient(center_gradient, clip);
          for (int d = 0; d < options.dimension; ++d) {
            model.input(doc, d) += center_gradient[d];
          }
          ++seen;
        }
      }
    }

    // Per-epoch numeric health check with bounded self-healing.
    const bool healthy = std::isfinite(epoch_loss) &&
                         linalg::MatrixHealthy(model.input, recovery.max_abs) &&
                         linalg::MatrixHealthy(model.output, recovery.max_abs);
    if (!healthy) {
      if (++retries > recovery.max_retries) {
        return Status::Internal(
            "SGNS training diverged (non-finite or runaway parameters) and "
            "exhausted " +
            std::to_string(recovery.max_retries) + " recovery retries");
      }
      lr_scale *= recovery.lr_backoff;
      clip *= recovery.clip_backoff;
      linalg::ReseedUnhealthyRows(model.input, init, recovery.max_abs, rng);
      linalg::ReseedUnhealthyRows(model.output, init, recovery.max_abs, rng);
      --epoch;  // Retry the failed epoch with the gentler settings.
      continue;
    }
  }
  return model;
}

}  // namespace

Status ValidateSgnsOptions(const SgnsOptions& options) {
  return ValidateOptions({
      {"dimension", static_cast<double>(options.dimension),
       OptionCheck::Rule::kPositive},
      {"window", static_cast<double>(options.window),
       OptionCheck::Rule::kPositive},
      {"negatives", static_cast<double>(options.negatives),
       OptionCheck::Rule::kPositive},
      // Zero epochs is a valid "untrained baseline" request.
      {"epochs", static_cast<double>(options.epochs),
       OptionCheck::Rule::kNonNegative},
      {"learning_rate", options.learning_rate,
       OptionCheck::Rule::kPositiveFinite},
      {"noise_power", options.noise_power, OptionCheck::Rule::kFinite},
  });
}

SgnsModel TrainSgns(const Corpus& corpus, const SgnsOptions& options,
                    Rng& rng) {
  Budget unlimited;
  return *TrainSgnsBudgeted(corpus, options, rng, unlimited);
}

SgnsModel TrainPvDbow(const std::vector<std::vector<int>>& documents,
                      int vocab_size, const SgnsOptions& options, Rng& rng) {
  Budget unlimited;
  return *TrainPvDbowBudgeted(documents, vocab_size, options, rng, unlimited);
}

StatusOr<SgnsModel> TrainSgnsBudgeted(const Corpus& corpus,
                                      const SgnsOptions& options, Rng& rng,
                                      Budget& budget) {
  if (corpus.vocab.size() == 0) {
    return Status::InvalidArgument("SGNS training needs a non-empty vocabulary");
  }
  return Train(corpus.sentences,
               corpus.vocab.NoiseDistribution(options.noise_power),
               corpus.vocab.size(), corpus.vocab.size(),
               /*skipgram_window=*/true, options, rng, budget);
}

StatusOr<SgnsModel> TrainPvDbowBudgeted(
    const std::vector<std::vector<int>>& documents, int vocab_size,
    const SgnsOptions& options, Rng& rng, Budget& budget) {
  if (vocab_size <= 0) {
    return Status::InvalidArgument(
        "PV-DBOW training needs a positive vocab_size");
  }
  if (documents.empty()) {
    return Status::InvalidArgument(
        "PV-DBOW training needs at least one document");
  }
  std::vector<double> counts(vocab_size, 0.0);
  for (const auto& doc : documents) {
    for (int token : doc) {
      X2VEC_CHECK(token >= 0 && token < vocab_size);
      counts[token] += 1.0;
    }
  }
  // Noise power applied to raw counts.
  for (double& c : counts) c = std::pow(std::max(c, 1e-9), options.noise_power);
  return Train(documents, counts, static_cast<int>(documents.size()),
               vocab_size, /*skipgram_window=*/false, options, rng, budget);
}

}  // namespace x2vec::embed
