#include "embed/stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/metrics.h"

namespace x2vec::embed {

bool CorpusSource::Next(std::vector<int>& sentence) {
  if (next_ >= sentences_->size()) return false;
  sentence = (*sentences_)[next_++];
  X2VEC_METRIC_COUNT("stream.sentences", 1);
  return true;
}

WalkSource::WalkSource(graph::GraphView graph, const WalkOptions& options,
                       uint64_t seed)
    : graph_(graph), options_(options), seed_(seed) {
  CheckWalkOptions(options);
  X2VEC_CHECK_GE(options.walks_per_node, 0);
  n_ = graph.NumVertices();
  passes_ = options.walks_per_node;
  Reset();
}

void WalkSource::LoadPass(int64_t pass) {
  // The per-pass shuffle stream of GenerateWalksParallel: only one pass's
  // permutation is ever resident.
  Rng shuffle = Rng::Fork(seed_, passes_ * n_ + pass);
  starts_ = RandomPermutation(static_cast<int>(n_), shuffle);
}

void WalkSource::Reset() {
  pass_ = 0;
  index_ = 0;
  if (n_ > 0 && passes_ > 0) LoadPass(0);
}

bool WalkSource::Next(std::vector<int>& sentence) {
  if (n_ == 0 || pass_ >= passes_) return false;
  const int start = starts_[index_];
  // The walk's own stream, keyed by (pass, start vertex) exactly as in
  // GenerateWalksParallel — the streamed corpus is that corpus, replayed.
  Rng rng = Rng::Fork(seed_, pass_ * n_ + start);
  sentence = GenerateWalk(graph_, start, options_, rng);
  if (++index_ == n_) {
    index_ = 0;
    if (++pass_ < passes_) LoadPass(pass_);
  }
  X2VEC_METRIC_COUNT("stream.sentences", 1);
  X2VEC_METRIC_COUNT("stream.walks", 1);
  return true;
}

ShuffleBufferSource::ShuffleBufferSource(SentenceSource& upstream,
                                         int64_t capacity, uint64_t seed)
    : upstream_(&upstream),
      capacity_(capacity),
      seed_(seed),
      rng_(Rng::Fork(seed, 0)) {
  X2VEC_CHECK_GE(capacity, 1);
}

void ShuffleBufferSource::Reset() {
  upstream_->Reset();
  rng_ = Rng::Fork(seed_, 0);
  buffer_.clear();
  upstream_done_ = false;
  primed_ = false;
}

void ShuffleBufferSource::Fill() {
  std::vector<int> sentence;
  while (static_cast<int64_t>(buffer_.size()) < capacity_ &&
         !upstream_done_) {
    if (upstream_->Next(sentence)) {
      buffer_.push_back(std::move(sentence));
    } else {
      upstream_done_ = true;
      X2VEC_METRIC_COUNT("stream.source_stalls", 1);
    }
  }
}

bool ShuffleBufferSource::Next(std::vector<int>& sentence) {
  if (!primed_) {
    Fill();
    primed_ = true;
  }
  if (buffer_.empty()) return false;
  // One uniform draw per emitted sentence, from the source's own forked
  // stream: the output order is a function of (upstream order, capacity,
  // seed) alone.
  const int64_t j =
      UniformInt(rng_, 0, static_cast<int64_t>(buffer_.size()) - 1);
  sentence = std::move(buffer_[j]);
  std::vector<int> refill;
  if (!upstream_done_ && upstream_->Next(refill)) {
    buffer_[j] = std::move(refill);
  } else {
    if (!upstream_done_) {
      upstream_done_ = true;
      X2VEC_METRIC_COUNT("stream.source_stalls", 1);
    }
    buffer_[j] = std::move(buffer_.back());
    buffer_.pop_back();
  }
  X2VEC_METRIC_OBSERVE("stream.shuffle_occupancy",
                       ({64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0}),
                       static_cast<double>(buffer_.size()));
  return true;
}

StreamStats CountStream(SentenceSource& source, int window,
                        bool skipgram_window, int vocab_size_hint) {
  StreamStats stats;
  if (vocab_size_hint > 0) {
    stats.token_counts.assign(static_cast<size_t>(vocab_size_hint), 0);
  }
  source.Reset();
  std::vector<int> seq;
  while (source.Next(seq)) {
    ++stats.num_sentences;
    const int len = static_cast<int>(seq.size());
    stats.total_tokens += len;
    if (skipgram_window) {
      // The window-clipped pair count of PositivePairPrefix, accumulated
      // streamingly: position pos pairs with [pos-window, pos+window]
      // clipped to the sequence, minus itself.
      for (int pos = 0; pos < len; ++pos) {
        const int lo = std::max(0, pos - window);
        const int hi = std::min(len - 1, pos + window);
        stats.pairs_per_epoch += hi - lo;
      }
    } else {
      stats.pairs_per_epoch += len;  // PV-DBOW: one pair per token.
    }
    for (const int token : seq) {
      X2VEC_CHECK_GE(token, 0);
      if (token >= static_cast<int>(stats.token_counts.size())) {
        stats.token_counts.resize(static_cast<size_t>(token) + 1, 0);
      }
      ++stats.token_counts[token];
    }
  }
  X2VEC_METRIC_COUNT("stream.count_passes", 1);
  return stats;
}

std::vector<double> NoiseFromCounts(const std::vector<int64_t>& token_counts,
                                    int vocab_size, double power,
                                    int64_t base_count) {
  X2VEC_CHECK_GT(vocab_size, 0);
  X2VEC_CHECK_LE(static_cast<int64_t>(token_counts.size()), vocab_size)
      << "counted token id exceeds vocab_size";
  std::vector<double> weights(static_cast<size_t>(vocab_size));
  for (int i = 0; i < vocab_size; ++i) {
    const int64_t count =
        (i < static_cast<int>(token_counts.size()) ? token_counts[i] : 0) +
        base_count;
    // pow on the raw count — the shared unigram^power convention: count 0
    // stays exactly 0 and is never drawn as a negative.
    weights[i] = std::pow(static_cast<double>(count), power);
  }
  return weights;
}

}  // namespace x2vec::embed
