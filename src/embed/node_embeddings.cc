#include "embed/node_embeddings.h"

#include <cmath>
#include <span>
#include <string>

#include "graph/algorithms.h"
#include "linalg/eigen.h"

namespace x2vec::embed {

linalg::Matrix SpectralAdjacencyEmbedding(const graph::Graph& g, int d) {
  return linalg::SvdEmbedding(g.AdjacencyMatrix(), d);
}

linalg::Matrix SpectralSimilarityEmbedding(const graph::Graph& g, int d,
                                           double c) {
  return linalg::SvdEmbedding(graph::ExpDistanceSimilarity(g, c), d);
}

linalg::Matrix LaplacianEigenmapEmbedding(const graph::Graph& g, int d) {
  const int n = g.NumVertices();
  X2VEC_CHECK(d >= 1 && d < n);
  // Combinatorial Laplacian L = D - A.
  linalg::Matrix laplacian(n, n);
  for (const graph::Edge& e : g.Edges()) {
    laplacian(e.u, e.v) -= e.weight;
    laplacian(e.v, e.u) -= e.weight;
    laplacian(e.u, e.u) += e.weight;
    laplacian(e.v, e.v) += e.weight;
  }
  const linalg::EigenDecomposition eig = linalg::SymmetricEigen(laplacian);
  // Eigenvalues are sorted descending; take the d smallest with
  // eigenvalue above the zero tolerance (skipping component indicators).
  std::vector<int> kept;
  for (int j = n - 1; j >= 0 && static_cast<int>(kept.size()) < d; --j) {
    if (eig.values[j] < 1e-9) continue;  // Trivial/zero modes.
    kept.push_back(j);
  }
  // Row-major fill over row views: each vertex's coordinates are gathered
  // from its eigenvector row in one pass.
  linalg::Matrix embedding(n, d);
  for (int v = 0; v < n; ++v) {
    const std::span<const double> vectors_row = eig.vectors.ConstRowSpan(v);
    const std::span<double> out = embedding.RowSpan(v);
    for (size_t p = 0; p < kept.size(); ++p) out[p] = vectors_row[kept[p]];
  }
  // Graphs with many components may not have d non-zero modes; the
  // remaining coordinates stay zero (component indicators carry no
  // geometry anyway).
  return embedding;
}

linalg::Matrix IsomapEmbedding(const graph::Graph& g, int d) {
  const int n = g.NumVertices();
  X2VEC_CHECK(d >= 1 && d <= n);
  const auto dist = graph::AllPairsShortestPaths(g);
  // Disconnected pairs get (max finite distance + 1), the usual Isomap
  // convention for multi-component graphs.
  int max_finite = 0;
  for (const auto& row : dist) {
    for (int value : row) max_finite = std::max(max_finite, value);
  }
  linalg::Matrix squared(n, n);
  for (int u = 0; u < n; ++u) {
    const std::span<double> row = squared.RowSpan(u);
    for (int v = 0; v < n; ++v) {
      const double distance =
          dist[u][v] >= 0 ? dist[u][v] : max_finite + 1.0;
      row[v] = distance * distance;
    }
  }
  // Classical MDS: B = -1/2 J D^2 J, embed along top eigenvectors of B.
  linalg::Matrix centering = linalg::Matrix::Identity(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) centering(i, j) -= 1.0 / n;
  }
  const linalg::Matrix b = centering * squared * centering * (-0.5);
  const linalg::EigenDecomposition eig = linalg::SymmetricEigen(b);
  std::vector<double> scale(d);
  for (int j = 0; j < d; ++j) {
    scale[j] = eig.values[j] > 1e-12 ? std::sqrt(eig.values[j]) : 0.0;
  }
  // Row-major fill over row views, one pass per vertex.
  linalg::Matrix embedding(n, d);
  for (int v = 0; v < n; ++v) {
    const std::span<const double> vectors_row = eig.vectors.ConstRowSpan(v);
    const std::span<double> out = embedding.RowSpan(v);
    for (int j = 0; j < d; ++j) out[j] = vectors_row[j] * scale[j];
  }
  return embedding;
}

namespace {

// Builds the node corpus for a walk set: node ids are already dense, so
// the string vocabulary is a formality, but occurrence counts feed the
// noise table.
Corpus WalkCorpus(const graph::Graph& g,
                  std::vector<std::vector<int>> walks) {
  Corpus corpus;
  for (int v = 0; v < g.NumVertices(); ++v) {
    corpus.vocab.Add("n" + std::to_string(v));
  }
  // Re-count occurrences: Add() above counted each once; walking tokens are
  // added by re-adding per occurrence.
  for (const auto& walk : walks) {
    for (int v : walk) corpus.vocab.Add("n" + std::to_string(v));
  }
  corpus.sentences = std::move(walks);
  return corpus;
}

StatusOr<linalg::Matrix> WalkSkipGram(const graph::Graph& g,
                                      const Node2VecOptions& options, Rng& rng,
                                      Budget& budget) {
  if (budget.Exhausted()) {
    return budget.ExhaustedError("walk + skip-gram embedding");
  }
  // Corpus generation runs on the parallel path (bit-identical at any
  // thread count); the seed is one draw from the caller's generator, which
  // then drives the sequential trainer as before.
  std::vector<std::vector<int>> walks =
      GenerateWalksParallel(g, options.walks, rng());
  if (!budget.Spend(static_cast<int64_t>(walks.size()))) {
    return budget.ExhaustedError("walk + skip-gram embedding");
  }
  const Corpus corpus = WalkCorpus(g, std::move(walks));
  StatusOr<SgnsModel> model = TrainSgnsBudgeted(corpus, options.sgns, rng,
                                                budget);
  if (!model.ok()) return model.status();
  return std::move(model->input);
}

StatusOr<linalg::Matrix> WalkSkipGramParallel(const graph::Graph& g,
                                              const Node2VecOptions& options,
                                              uint64_t seed, Budget& budget) {
  if (budget.Exhausted()) {
    return budget.ExhaustedError("walk + skip-gram embedding");
  }
  // Streams 0 and 1 of the seed are reserved for walks and training.
  std::vector<std::vector<int>> walks =
      GenerateWalksParallel(g, options.walks, MixSeed(seed, 0));
  if (!budget.Spend(static_cast<int64_t>(walks.size()))) {
    return budget.ExhaustedError("walk + skip-gram embedding");
  }
  const Corpus corpus = WalkCorpus(g, std::move(walks));
  StatusOr<SgnsModel> model =
      TrainSgnsSharded(corpus, options.sgns, MixSeed(seed, 1), budget);
  if (!model.ok()) return model.status();
  return std::move(model->input);
}

StatusOr<linalg::Matrix> WalkSkipGramStreaming(const graph::GraphView& g,
                                               const Node2VecOptions& options,
                                               uint64_t seed, Budget& budget,
                                               int64_t shuffle_buffer) {
  if (budget.Exhausted()) {
    return budget.ExhaustedError("walk + skip-gram embedding");
  }
  const int n = g.NumVertices();
  if (n == 0) {
    return Status::InvalidArgument(
        "SGNS training needs a non-empty vocabulary");
  }
  // Streams 0 and 1 of the seed are reserved for walks and training, as in
  // the materialised parallel path; stream 2 drives the optional shuffle.
  WalkSource walks(g, options.walks, MixSeed(seed, 0));
  if (!budget.Spend(walks.NumSentences())) {
    return budget.ExhaustedError("walk + skip-gram embedding");
  }
  // The single streaming counting pass: per-vertex occurrence counts for
  // the noise table plus the pair-schedule totals, replacing the
  // materialised WalkCorpus. base_count 1 reproduces its convention of
  // seeding every vertex with one count before the walk occurrences, so
  // the table — and hence every negative draw — matches the in-memory path
  // value for value.
  const StreamStats stats =
      CountStream(walks, options.sgns.window, /*skipgram_window=*/true, n);
  const std::vector<double> noise = NoiseFromCounts(
      stats.token_counts, n, options.sgns.noise_power, /*base_count=*/1);
  // `stats` stays valid under the shuffle: every total it carries is
  // order-independent, so the permuted stream needs no second pass.
  StatusOr<SgnsModel> model =
      shuffle_buffer > 0
          ? [&] {
              ShuffleBufferSource shuffled(walks, shuffle_buffer,
                                           MixSeed(seed, 2));
              return TrainSgnsShardedStreaming(shuffled, stats, noise,
                                               options.sgns, MixSeed(seed, 1),
                                               budget);
            }()
          : TrainSgnsShardedStreaming(walks, stats, noise, options.sgns,
                                      MixSeed(seed, 1), budget);
  if (!model.ok()) return model.status();
  return std::move(model->input);
}

}  // namespace

linalg::Matrix DeepWalkEmbedding(const graph::Graph& g,
                                 const Node2VecOptions& options, Rng& rng) {
  Budget unlimited;
  return *DeepWalkEmbeddingBudgeted(g, options, rng, unlimited);
}

linalg::Matrix Node2VecEmbedding(const graph::Graph& g,
                                 const Node2VecOptions& options, Rng& rng) {
  Budget unlimited;
  return *Node2VecEmbeddingBudgeted(g, options, rng, unlimited);
}

StatusOr<linalg::Matrix> DeepWalkEmbeddingBudgeted(
    const graph::Graph& g, const Node2VecOptions& options, Rng& rng,
    Budget& budget) {
  Node2VecOptions uniform = options;
  uniform.walks.p = 1.0;
  uniform.walks.q = 1.0;
  return WalkSkipGram(g, uniform, rng, budget);
}

StatusOr<linalg::Matrix> Node2VecEmbeddingBudgeted(
    const graph::Graph& g, const Node2VecOptions& options, Rng& rng,
    Budget& budget) {
  return WalkSkipGram(g, options, rng, budget);
}

StatusOr<linalg::Matrix> DeepWalkEmbeddingParallel(
    const graph::Graph& g, const Node2VecOptions& options, uint64_t seed,
    Budget& budget) {
  Node2VecOptions uniform = options;
  uniform.walks.p = 1.0;
  uniform.walks.q = 1.0;
  return WalkSkipGramParallel(g, uniform, seed, budget);
}

StatusOr<linalg::Matrix> Node2VecEmbeddingParallel(
    const graph::Graph& g, const Node2VecOptions& options, uint64_t seed,
    Budget& budget) {
  return WalkSkipGramParallel(g, options, seed, budget);
}

StatusOr<linalg::Matrix> DeepWalkEmbeddingStreaming(
    const graph::GraphView& g, const Node2VecOptions& options, uint64_t seed,
    Budget& budget, int64_t shuffle_buffer) {
  Node2VecOptions uniform = options;
  uniform.walks.p = 1.0;
  uniform.walks.q = 1.0;
  return WalkSkipGramStreaming(g, uniform, seed, budget, shuffle_buffer);
}

StatusOr<linalg::Matrix> Node2VecEmbeddingStreaming(
    const graph::GraphView& g, const Node2VecOptions& options, uint64_t seed,
    Budget& budget, int64_t shuffle_buffer) {
  return WalkSkipGramStreaming(g, options, seed, budget, shuffle_buffer);
}

double ReconstructionError(const linalg::Matrix& embedding,
                           const linalg::Matrix& similarity) {
  return (embedding * embedding.Transposed() - similarity).FrobeniusNorm();
}

}  // namespace x2vec::embed
