#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "base/check.h"

namespace x2vec::embed {

/// Token vocabulary: bidirectional string <-> dense id map with counts.
class Vocabulary {
 public:
  /// Adds (or finds) a token and bumps its count; returns its id.
  int Add(const std::string& token);
  /// Id of a token, or -1 if unknown.
  int Lookup(const std::string& token) const;
  const std::string& Token(int id) const {
    X2VEC_CHECK(id >= 0 && id < size());
    return tokens_[id];
  }
  int64_t Count(int id) const {
    X2VEC_CHECK(id >= 0 && id < size());
    return counts_[id];
  }
  int size() const { return static_cast<int>(tokens_.size()); }

  /// Unigram counts raised to `power` (word2vec uses 0.75) — the negative-
  /// sampling distribution. Convention shared with PvDbowNoiseDistribution
  /// (embed/sgns.h): weights are pow(count, power) on the *raw* counts, so
  /// a zero-count token keeps weight exactly 0 and is never drawn as a
  /// negative. (Vocabulary counts come from observed tokens and are >= 1;
  /// the zero-count case matters for callers that build tables over a
  /// larger id space.)
  std::vector<double> NoiseDistribution(double power = 0.75) const;

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
};

/// A corpus is a list of sentences of token ids.
struct Corpus {
  Vocabulary vocab;
  std::vector<std::vector<int>> sentences;

  /// Builds from tokenised string sentences.
  static Corpus FromSentences(
      const std::vector<std::vector<std::string>>& sentences);

  int64_t TotalTokens() const;
};

}  // namespace x2vec::embed
