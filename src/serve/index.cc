#include "serve/index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "base/metrics.h"
#include "base/rng.h"
#include "linalg/kernels.h"
#include "ml/neighbors.h"

namespace x2vec::serve {
namespace {

/// Score of `row` for `query` under `metric`. `inv_query_norm` is the
/// cosine query scale (0.0 for an all-zero query — every score collapses
/// to 0.0, the CosineSimilarity convention); ignored under kL2.
double ScoreRow(IndexMetric metric, std::span<const double> row,
                std::span<const double> query, double inv_query_norm) {
  if (metric == IndexMetric::kCosine) {
    return linalg::Dot(row, query) * inv_query_norm;
  }
  return -linalg::SquaredDistance(row, query);
}

/// 1/||query|| for cosine scoring, 0.0 for the all-zero query, 1.0 under
/// kL2 (unused there).
double InverseQueryNorm(IndexMetric metric, std::span<const double> query) {
  if (metric != IndexMetric::kCosine) return 1.0;
  const double norm = linalg::Norm2(query);
  return norm > 0.0 ? 1.0 / norm : 0.0;
}

/// Keeps the best `k` of `candidates` in ranking order (RanksBefore).
void RankTopK(std::vector<Neighbor>& candidates, int k) {
  const int kept = std::min<int>(k, static_cast<int>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + kept,
                    candidates.end(), RanksBefore);
  candidates.resize(kept);
}

Status ValidateQuery(std::span<const double> query, int k, int dim) {
  if (k < 1) return Status::InvalidArgument("TopK needs k >= 1");
  if (static_cast<int>(query.size()) != dim) {
    return Status::InvalidArgument("query dimension does not match the index");
  }
  return Status::Ok();
}

/// Full scan over the stored rows — the exact backend, and the ground
/// truth the cluster-pruned one is measured against.
class ExactScanIndex final : public EmbeddingIndex {
 public:
  ExactScanIndex(linalg::Matrix stored, IndexMetric metric)
      : stored_(std::move(stored)), metric_(metric) {}

  int rows() const override { return stored_.rows(); }
  int dim() const override { return stored_.cols(); }
  IndexMetric metric() const override { return metric_; }
  std::span<const double> StoredRow(int id) const override {
    return stored_.ConstRowSpan(id);
  }

  StatusOr<std::vector<Neighbor>> TopK(std::span<const double> query, int k,
                                       Budget& budget) const override {
    if (Status status = ValidateQuery(query, k, dim()); !status.ok()) {
      return status;
    }
    if (!budget.Spend(stored_.rows())) {
      return budget.ExhaustedError("serve exact scan");
    }
    const double inv_query_norm = InverseQueryNorm(metric_, query);
    std::vector<Neighbor> candidates(stored_.rows());
    for (int i = 0; i < stored_.rows(); ++i) {
      candidates[i] = {
          i, ScoreRow(metric_, stored_.ConstRowSpan(i), query, inv_query_norm)};
    }
    RankTopK(candidates, k);
    return candidates;
  }

 private:
  linalg::Matrix stored_;
  IndexMetric metric_;
};

/// k-means-cell backend: scores the centroids, exact-ranks the members of
/// the top-P cells. Every structure is frozen at build time.
class ClusterPrunedIndex final : public EmbeddingIndex {
 public:
  ClusterPrunedIndex(linalg::Matrix stored, IndexMetric metric,
                     linalg::Matrix centroids,
                     std::vector<std::vector<int>> members, int probes)
      : stored_(std::move(stored)),
        metric_(metric),
        centroids_(std::move(centroids)),
        members_(std::move(members)),
        probes_(probes) {}

  int rows() const override { return stored_.rows(); }
  int dim() const override { return stored_.cols(); }
  IndexMetric metric() const override { return metric_; }
  std::span<const double> StoredRow(int id) const override {
    return stored_.ConstRowSpan(id);
  }

  StatusOr<std::vector<Neighbor>> TopK(std::span<const double> query, int k,
                                       Budget& budget) const override {
    if (Status status = ValidateQuery(query, k, dim()); !status.ok()) {
      return status;
    }
    if (!budget.Spend(centroids_.rows())) {
      return budget.ExhaustedError("serve centroid scan");
    }
    const double inv_query_norm = InverseQueryNorm(metric_, query);
    // Stage 1: rank the cells by centroid score; keep the top probes_.
    std::vector<Neighbor> cells(centroids_.rows());
    for (int c = 0; c < centroids_.rows(); ++c) {
      cells[c] = {c, ScoreRow(metric_, centroids_.ConstRowSpan(c), query,
                              inv_query_norm)};
    }
    RankTopK(cells, probes_);
    // Stage 2: exact-rank the members of the probed cells. The whole
    // member scan is charged up front so an over-quota request is
    // rejected, never part-served.
    int64_t member_count = 0;
    for (const Neighbor& cell : cells) {
      member_count += static_cast<int64_t>(members_[cell.id].size());
    }
    if (!budget.Spend(member_count)) {
      return budget.ExhaustedError("serve probed-cell scan");
    }
    X2VEC_METRIC_COUNT("serve.probes", static_cast<int64_t>(cells.size()));
    std::vector<Neighbor> candidates;
    candidates.reserve(static_cast<size_t>(member_count));
    for (const Neighbor& cell : cells) {
      for (int id : members_[cell.id]) {
        candidates.push_back({id, ScoreRow(metric_, stored_.ConstRowSpan(id),
                                           query, inv_query_norm)});
      }
    }
    RankTopK(candidates, k);
    return candidates;
  }

 private:
  linalg::Matrix stored_;
  IndexMetric metric_;
  linalg::Matrix centroids_;           ///< clusters x dim cell centers.
  std::vector<std::vector<int>> members_;  ///< Row ids per cell, ascending.
  int probes_;
};

}  // namespace

linalg::Matrix NormalizedRows(const linalg::Matrix& rows) {
  linalg::Matrix normalized = rows;
  for (int i = 0; i < normalized.rows(); ++i) {
    const double norm = linalg::Norm2(normalized.ConstRowSpan(i));
    if (norm > 0.0) linalg::Scale(normalized.RowSpan(i), 1.0 / norm);
  }
  return normalized;
}

bool RanksBefore(const Neighbor& a, const Neighbor& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

StatusOr<std::unique_ptr<EmbeddingIndex>> BuildIndex(
    const linalg::Matrix& rows, IndexMetric metric,
    const IndexOptions& options) {
  if (rows.rows() == 0 || rows.cols() == 0) {
    return Status::InvalidArgument("serving index needs a non-empty matrix");
  }
  linalg::Matrix stored =
      metric == IndexMetric::kCosine ? NormalizedRows(rows) : rows;
  if (options.kind == IndexKind::kExactScan) {
    return std::unique_ptr<EmbeddingIndex>(
        new ExactScanIndex(std::move(stored), metric));
  }
  if (options.kmeans_iterations < 1) {
    return Status::InvalidArgument("kmeans_iterations must be >= 1");
  }
  int clusters = options.clusters;
  if (clusters <= 0) {
    clusters = static_cast<int>(std::sqrt(static_cast<double>(rows.rows())));
  }
  clusters = std::clamp(clusters, 1, rows.rows());
  int probes = options.probes;
  if (probes <= 0) probes = std::max(1, clusters / 8);
  probes = std::clamp(probes, 1, clusters);
  // The cells are built over the *stored* rows (unit-normalized under
  // cosine), so centroid distance prunes in the same space queries are
  // scored in.
  Rng rng = MakeRng(options.seed);
  const ml::KMeansResult clustering =
      ml::KMeans(stored, clusters, rng, options.kmeans_iterations);
  std::vector<std::vector<int>> members(clusters);
  for (int i = 0; i < stored.rows(); ++i) {
    members[clustering.assignment[i]].push_back(i);
  }
  return std::unique_ptr<EmbeddingIndex>(new ClusterPrunedIndex(
      std::move(stored), metric, clustering.centroids, std::move(members),
      probes));
}

double RecallAgainstExact(const std::vector<Neighbor>& exact,
                          const std::vector<Neighbor>& approx) {
  if (exact.empty()) return 1.0;
  int hits = 0;
  for (const Neighbor& truth : exact) {
    for (const Neighbor& candidate : approx) {
      if (candidate.id == truth.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace x2vec::serve
