#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "base/budget.h"
#include "base/status.h"
#include "linalg/matrix.h"

namespace x2vec::serve {

/// Read-only nearest-neighbor indexes over trained embedding rows — the
/// query-side data structure of the serving layer (DESIGN.md §12). An
/// index is built once from a model's embedding matrix and then answers
/// TopK scans from any number of concurrent callers: every member is
/// immutable after construction and TopK keeps all scratch on the caller's
/// stack, so a single index instance is safe to share across threads
/// without locks.
///
/// Two backends implement the same interface:
///
///   kExactScan      scores every row with the linalg span kernels — the
///                   ground truth every approximate answer is measured
///                   against.
///   kClusterPruned  k-means cells (ml::KMeans) over the rows; a query
///                   scores the centroids, probes the top-P cells and
///                   exact-ranks only their members. Scans a fraction of
///                   the rows at a measured recall cost
///                   (tests/serve_test.cc pins recall@10 >= 0.95 on
///                   clustered data; BENCH_serving.json commits the
///                   throughput win).
///
/// Determinism contract: results are a pure function of (index rows,
/// options, query, k). Scores tie-break on ascending row id, so orderings
/// are stable across thread counts and — for rows that are bit-identical —
/// across kernel backends (tests/backend_parity_test.cc).

/// One ranked answer: a row id and its score under the index metric
/// (higher is always better; see IndexMetric).
struct Neighbor {
  int id = -1;
  double score = 0.0;

  bool operator==(const Neighbor&) const = default;
};

/// The score an index ranks by. Higher is better under both metrics so
/// one ranking rule serves both:
///
///   kCosine  cosine similarity. The index stores unit-normalized row
///            copies and normalizes each query once, so a candidate's
///            score is one Dot; all-zero rows (and queries) keep norm 0
///            and score 0.0 against everything — the CosineSimilarity
///            convention.
///   kL2      negated squared Euclidean distance (no square root; the
///            ranking is the same and the scan cheaper). The metric for
///            TransE link prediction, where low ||h + r - t|| means
///            plausible.
enum class IndexMetric {
  kCosine = 0,
  kL2 = 1,
};

/// Which backend BuildIndex constructs.
enum class IndexKind {
  kExactScan = 0,
  kClusterPruned = 1,
};

/// Construction-time knobs. The defaults size the cluster-pruned index by
/// the usual sqrt heuristic; `seed` is part of the index identity (two
/// builds from the same rows, options and seed are bit-identical).
struct IndexOptions {
  IndexKind kind = IndexKind::kExactScan;
  /// k-means cell count; <= 0 picks floor(sqrt(rows)), clamped to
  /// [1, rows].
  int clusters = 0;
  /// Cells exact-ranked per query; <= 0 picks max(1, clusters / 8),
  /// always clamped to [1, clusters].
  int probes = 0;
  /// Lloyd iterations for the one-off build.
  int kmeans_iterations = 25;
  /// Seed for the k-means++ seeding of the cell build.
  uint64_t seed = 0x5e7;
};

/// Read-only top-k scorer over fixed embedding rows. Thread-safe by
/// immutability; see the file comment for the determinism contract.
class EmbeddingIndex {
 public:
  virtual ~EmbeddingIndex() = default;

  [[nodiscard]] virtual int rows() const = 0;
  [[nodiscard]] virtual int dim() const = 0;
  [[nodiscard]] virtual IndexMetric metric() const = 0;

  /// The stored representation of row `id` — unit-normalized under
  /// kCosine, the raw embedding under kL2. Query composition (analogy
  /// offsets, TransE h + r) builds on these so composed queries live in
  /// the same space the index scores in.
  [[nodiscard]] virtual std::span<const double> StoredRow(int id) const = 0;

  /// The `k` best rows for `query` under metric(), ranked by (score
  /// descending, id ascending). k larger than the candidate count returns
  /// every candidate ranked; k < 1 and dimension mismatches are
  /// kInvalidArgument. `budget` is the per-request admission quota: one
  /// work unit per row (and, for the pruned backend, per centroid) this
  /// call scores, charged *before* the scan so an over-quota request is
  /// rejected with kResourceExhausted instead of part-served.
  [[nodiscard]] virtual StatusOr<std::vector<Neighbor>> TopK(
      std::span<const double> query, int k, Budget& budget) const = 0;
};

/// Copy of `rows` with every row scaled to unit l2 norm (all-zero rows
/// stay zero — the CosineSimilarity convention). The cosine backends store
/// exactly this.
[[nodiscard]] linalg::Matrix NormalizedRows(const linalg::Matrix& rows);

/// True when `a` ranks strictly before `b`: higher score first, ties on
/// ascending id. The single ordering rule every serving ranking uses.
[[nodiscard]] bool RanksBefore(const Neighbor& a, const Neighbor& b);

/// Builds the backend `options.kind` over a private copy of `rows`.
/// kInvalidArgument for an empty matrix or non-positive options fields.
[[nodiscard]] StatusOr<std::unique_ptr<EmbeddingIndex>> BuildIndex(
    const linalg::Matrix& rows, IndexMetric metric,
    const IndexOptions& options);

/// recall@k of an approximate answer against the exact one: the fraction
/// of `exact` ids that also appear in `approx`. 1.0 when `exact` is empty.
[[nodiscard]] double RecallAgainstExact(const std::vector<Neighbor>& exact,
                                        const std::vector<Neighbor>& approx);

}  // namespace x2vec::serve
