#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/fs.h"
#include "base/status.h"
#include "kg/transe.h"
#include "linalg/matrix.h"
#include "serve/index.h"

namespace x2vec::serve {

/// The embedding query engine — the serving layer's front door (DESIGN.md
/// §12). A QueryEngine loads a trained model exactly once (from an
/// in-memory matrix or a persisted artifact), builds a read-only
/// EmbeddingIndex over its rows, and then answers nearest-neighbor,
/// analogy and TransE link-prediction queries from any number of
/// concurrent callers:
///
///   - every query mints its own admission Budget from the engine's
///     BudgetSpec, so one over-quota request is rejected with
///     kResourceExhausted without starving its neighbors;
///   - ServeAll batches a request list through base/parallel, so a replay
///     is bit-identical at any thread count;
///   - served / rejected counts and a latency histogram flow into
///     base/metrics (serve.queries, serve.rejected, serve.latency_us,
///     serve.probes, serve.qps) and from there into run_report.json.

/// Engine construction knobs: which index backend to build and the
/// per-request admission quota (work units are rows/centroids scored; an
/// empty BudgetSpec admits everything).
struct ServeOptions {
  IndexOptions index;
  BudgetSpec admission;
};

/// One query in a batch. `a` is the primary id (query row / analogy `a` /
/// TransE head), `b` and `c` the analogy operands (`b` is also the TransE
/// relation id), `k` the answer size.
struct ServeRequest {
  enum class Kind {
    kNearest = 0,      ///< k nearest rows to row `a` (excluding `a`).
    kAnalogy = 1,      ///< a - b + c in the stored space, excluding a/b/c.
    kLinkPredict = 2,  ///< Tails ranked for (head=a, relation=b, ?).
  };

  Kind kind = Kind::kNearest;
  int a = 0;
  int b = 0;
  int c = 0;
  int k = 10;
};

/// Per-request result slot for batched serving. Default-constructible so
/// ServeAll can run under ParallelMap; `status` is Ok exactly when
/// `neighbors` is meaningful.
struct ServeOutcome {
  Status status;
  std::vector<Neighbor> neighbors;
};

/// Loaded-model query front end. Move-only; after construction every
/// member is read-only, so a single engine serves concurrent callers
/// without locks (each caller's scratch lives on its own stack, each
/// request spends its own Budget).
class QueryEngine {
 public:
  /// Cosine engine over one embedding matrix (word/node/graph vectors).
  [[nodiscard]] static StatusOr<QueryEngine> Build(
      const linalg::Matrix& embeddings, const ServeOptions& options);

  /// L2 engine over a TransE model: the index holds the entity rows, the
  /// relation translations stay available for LinkPredict.
  [[nodiscard]] static StatusOr<QueryEngine> BuildTransE(
      const kg::TransEModel& model, const ServeOptions& options);

  /// Build() over an artifact written by embed::SaveEmbeddingMatrix.
  [[nodiscard]] static StatusOr<QueryEngine> LoadEmbeddingMatrix(
      Fs& fs, const std::string& path, const ServeOptions& options);

  /// Build() over the input matrix of an artifact written by
  /// embed::SaveSgnsModel (the input rows are the word vectors).
  [[nodiscard]] static StatusOr<QueryEngine> LoadSgnsModel(
      Fs& fs, const std::string& path, const ServeOptions& options);

  /// BuildTransE() over an artifact written by kg::SaveTransEModel.
  [[nodiscard]] static StatusOr<QueryEngine> LoadTransEModel(
      Fs& fs, const std::string& path, const ServeOptions& options);

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  [[nodiscard]] int rows() const { return index_->rows(); }
  [[nodiscard]] int dim() const { return index_->dim(); }
  [[nodiscard]] const EmbeddingIndex& index() const { return *index_; }

  /// k nearest rows to row `id`, excluding `id` itself.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> Nearest(int id, int k) const;

  /// k nearest rows to an arbitrary caller-supplied query vector.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> NearestTo(
      std::span<const double> query, int k) const;

  /// word2vec analogy: ranks rows by similarity to stored(a) - stored(b) +
  /// stored(c), excluding a, b and c from the answer.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> Analogy(int a, int b, int c,
                                                        int k) const;

  /// TransE link prediction: ranks candidate tails for (head, relation, ?)
  /// by -||x_head + t_relation - x_tail||^2, excluding `head`. Only
  /// available on engines built from a TransE model.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> LinkPredict(int head,
                                                            int relation,
                                                            int k) const;

  /// Dispatches one request to the query above it names, under that
  /// request's own admission budget, and records the serving metrics.
  /// Errors land in the outcome's status (never thrown/aborted).
  [[nodiscard]] ServeOutcome Serve(const ServeRequest& request) const;

  /// Serves a whole batch through base/parallel — outcome i belongs to
  /// request i, and the batch is bit-identical at any thread count. Sets
  /// the serve.qps gauge from the batch wall time.
  [[nodiscard]] std::vector<ServeOutcome> ServeAll(
      const std::vector<ServeRequest>& requests) const;

 private:
  QueryEngine(std::unique_ptr<EmbeddingIndex> index, linalg::Matrix relations,
              ServeOptions options)
      : index_(std::move(index)),
        relations_(std::move(relations)),
        options_(std::move(options)) {}

  /// Shared query tail: mints the admission budget, runs TopK asking for
  /// `k + excludes.size()` answers, then filters the excluded ids out and
  /// truncates to `k`.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> TopKExcluding(
      std::span<const double> query, int k, std::span<const int> excludes,
      const char* operation) const;

  [[nodiscard]] Status CheckRowId(int id, const char* what) const;

  std::unique_ptr<EmbeddingIndex> index_;
  linalg::Matrix relations_;  ///< TransE translations; 0x0 otherwise.
  ServeOptions options_;
};

}  // namespace x2vec::serve
