#include "serve/engine.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "base/metrics.h"
#include "base/parallel.h"
#include "base/trace.h"
#include "embed/checkpoint.h"
#include "embed/sgns.h"
#include "kg/persist.h"
#include "linalg/kernels.h"

namespace x2vec::serve {
namespace {

bool Contains(std::span<const int> ids, int id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

StatusOr<QueryEngine> QueryEngine::Build(const linalg::Matrix& embeddings,
                                         const ServeOptions& options) {
  StatusOr<std::unique_ptr<EmbeddingIndex>> index =
      BuildIndex(embeddings, IndexMetric::kCosine, options.index);
  if (!index.ok()) return index.status();
  return QueryEngine(std::move(index).value(), linalg::Matrix(), options);
}

StatusOr<QueryEngine> QueryEngine::BuildTransE(const kg::TransEModel& model,
                                               const ServeOptions& options) {
  if (model.relations.rows() == 0) {
    return Status::InvalidArgument(
        "TransE serving needs at least one relation translation");
  }
  if (model.relations.cols() != model.entities.cols()) {
    return Status::InvalidArgument(
        "TransE relation dimension does not match the entity dimension");
  }
  StatusOr<std::unique_ptr<EmbeddingIndex>> index =
      BuildIndex(model.entities, IndexMetric::kL2, options.index);
  if (!index.ok()) return index.status();
  return QueryEngine(std::move(index).value(), model.relations, options);
}

StatusOr<QueryEngine> QueryEngine::LoadEmbeddingMatrix(
    Fs& fs, const std::string& path, const ServeOptions& options) {
  StatusOr<linalg::Matrix> matrix = embed::LoadEmbeddingMatrix(fs, path);
  if (!matrix.ok()) return matrix.status();
  return Build(*matrix, options);
}

StatusOr<QueryEngine> QueryEngine::LoadSgnsModel(Fs& fs,
                                                 const std::string& path,
                                                 const ServeOptions& options) {
  StatusOr<embed::SgnsModel> model = embed::LoadSgnsModel(fs, path);
  if (!model.ok()) return model.status();
  return Build(model->input, options);
}

StatusOr<QueryEngine> QueryEngine::LoadTransEModel(
    Fs& fs, const std::string& path, const ServeOptions& options) {
  StatusOr<kg::TransEModel> model = kg::LoadTransEModel(fs, path);
  if (!model.ok()) return model.status();
  return BuildTransE(*model, options);
}

Status QueryEngine::CheckRowId(int id, const char* what) const {
  if (id < 0 || id >= index_->rows()) {
    return Status::InvalidArgument(std::string(what) +
                                   " id is outside the indexed rows");
  }
  return Status::Ok();
}

StatusOr<std::vector<Neighbor>> QueryEngine::TopKExcluding(
    std::span<const double> query, int k, std::span<const int> excludes,
    const char* operation) const {
  if (k < 1) {
    return Status::InvalidArgument(std::string(operation) + " needs k >= 1");
  }
  // Over-ask by the exclusion count (capped at the row count — no index
  // can return more) so the final answer still holds k rows.
  const int64_t wanted = static_cast<int64_t>(k) +
                         static_cast<int64_t>(excludes.size());
  const int ask =
      static_cast<int>(std::min<int64_t>(wanted, index_->rows()));
  Budget quota = options_.admission.MakeBudget();
  StatusOr<std::vector<Neighbor>> ranked =
      index_->TopK(query, std::max(ask, 1), quota);
  if (!ranked.ok()) return ranked.status();
  std::vector<Neighbor> answer;
  answer.reserve(static_cast<size_t>(std::min<int64_t>(k, index_->rows())));
  for (const Neighbor& candidate : *ranked) {
    if (Contains(excludes, candidate.id)) continue;
    answer.push_back(candidate);
    if (static_cast<int>(answer.size()) == k) break;
  }
  return answer;
}

StatusOr<std::vector<Neighbor>> QueryEngine::Nearest(int id, int k) const {
  if (Status status = CheckRowId(id, "query row"); !status.ok()) {
    return status;
  }
  const int excludes[] = {id};
  return TopKExcluding(index_->StoredRow(id), k, excludes, "Nearest");
}

StatusOr<std::vector<Neighbor>> QueryEngine::NearestTo(
    std::span<const double> query, int k) const {
  return TopKExcluding(query, k, {}, "NearestTo");
}

StatusOr<std::vector<Neighbor>> QueryEngine::Analogy(int a, int b, int c,
                                                     int k) const {
  if (Status status = CheckRowId(a, "analogy a"); !status.ok()) return status;
  if (Status status = CheckRowId(b, "analogy b"); !status.ok()) return status;
  if (Status status = CheckRowId(c, "analogy c"); !status.ok()) return status;
  // stored(a) - stored(b) + stored(c): under cosine the operands are the
  // unit-normalized rows, the word2vec 3COSADD convention.
  std::vector<double> query(static_cast<size_t>(index_->dim()));
  linalg::Copy(index_->StoredRow(a), query);
  linalg::Axpy(-1.0, index_->StoredRow(b), query);
  linalg::Axpy(1.0, index_->StoredRow(c), query);
  const int excludes[] = {a, b, c};
  return TopKExcluding(query, k, excludes, "Analogy");
}

StatusOr<std::vector<Neighbor>> QueryEngine::LinkPredict(int head,
                                                         int relation,
                                                         int k) const {
  if (relations_.rows() == 0) {
    return Status::FailedPrecondition(
        "link prediction needs an engine built from a TransE model");
  }
  if (Status status = CheckRowId(head, "head entity"); !status.ok()) {
    return status;
  }
  if (relation < 0 || relation >= relations_.rows()) {
    return Status::InvalidArgument("relation id is outside the model");
  }
  // Candidate tails minimise ||x_head + t_rel - x_tail||; the L2 index
  // ranks by negated squared distance to x_head + t_rel.
  std::vector<double> query(static_cast<size_t>(index_->dim()));
  linalg::Copy(index_->StoredRow(head), query);
  linalg::Axpy(1.0, relations_.ConstRowSpan(relation), query);
  const int excludes[] = {head};
  return TopKExcluding(query, k, excludes, "LinkPredict");
}

ServeOutcome QueryEngine::Serve(const ServeRequest& request) const {
  const trace::StopWatch watch;
  StatusOr<std::vector<Neighbor>> result = [&]() {
    switch (request.kind) {
      case ServeRequest::Kind::kNearest:
        return Nearest(request.a, request.k);
      case ServeRequest::Kind::kAnalogy:
        return Analogy(request.a, request.b, request.c, request.k);
      case ServeRequest::Kind::kLinkPredict:
        return LinkPredict(request.a, request.b, request.k);
    }
    return StatusOr<std::vector<Neighbor>>(
        Status::InvalidArgument("unknown request kind"));
  }();
  ServeOutcome outcome;
  if (result.ok()) {
    outcome.neighbors = std::move(result).value();
  } else {
    outcome.status = result.status();
  }
  X2VEC_METRIC_COUNT("serve.queries", 1);
  if (outcome.status.code() == StatusCode::kResourceExhausted) {
    X2VEC_METRIC_COUNT("serve.rejected", 1);
  }
  // Bounds in microseconds: sub-hundred-us pruned probes up through
  // multi-ms full scans.
  X2VEC_METRIC_OBSERVE(
      "serve.latency_us",
      ({50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 50000.0}),
      watch.Seconds() * 1e6);
  return outcome;
}

std::vector<ServeOutcome> QueryEngine::ServeAll(
    const std::vector<ServeRequest>& requests) const {
  const trace::StopWatch watch;
  std::vector<ServeOutcome> outcomes = ParallelMap(
      static_cast<int64_t>(requests.size()),
      [&](int64_t i) { return Serve(requests[static_cast<size_t>(i)]); });
  // Gauges are serial-only; this runs after the batch barrier.
  const double seconds = watch.Seconds();
  if (seconds > 0.0 && !requests.empty()) {
    X2VEC_METRIC_GAUGE("serve.qps",
                       static_cast<double>(requests.size()) / seconds);
  }
  return outcomes;
}

}  // namespace x2vec::serve
