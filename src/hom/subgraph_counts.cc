#include "hom/subgraph_counts.h"

#include <optional>
#include <vector>

#include "graph/isomorphism.h"
#include "hom/treewidth.h"

namespace x2vec::hom {
namespace {

using graph::Graph;

// Quotient of f by the partition given as block ids per vertex; nullopt if
// an edge collapses into a self-loop (such quotients contribute nothing).
std::optional<Graph> Quotient(const Graph& f,
                              const std::vector<int>& block_of,
                              int num_blocks) {
  Graph q(num_blocks);
  for (int v = 0; v < f.NumVertices(); ++v) {
    // Labelled patterns: blocks must be label-consistent; we simply carry
    // the first label (mixed-label blocks are impossible for injective
    // counting of labelled patterns — handled by hom() returning 0).
    q.SetVertexLabel(block_of[v], f.VertexLabel(v));
  }
  for (const graph::Edge& e : f.Edges()) {
    const int a = block_of[e.u];
    const int b = block_of[e.v];
    if (a == b) return std::nullopt;  // Self-loop.
    if (!q.HasEdge(a, b)) q.AddEdge(a, b);
  }
  return q;
}

__int128 CheckedMul(__int128 a, __int128 b) {
  __int128 out;
  X2VEC_CHECK(!__builtin_mul_overflow(a, b, &out)) << "overflow";
  return out;
}

// Enumerates all set partitions of {0..n-1} as restricted growth strings
// (rgs[0] = 0, rgs[i] <= 1 + max of the prefix), invoking the visitor with
// (block ids, number of blocks).
template <typename Visitor>
void PartitionRecurse(int position, int n, int max_so_far,
                      std::vector<int>& rgs, Visitor&& visit) {
  if (position == n) {
    visit(rgs, max_so_far + 1);
    return;
  }
  for (int block = 0; block <= max_so_far + 1; ++block) {
    rgs[position] = block;
    PartitionRecurse(position + 1, n, std::max(max_so_far, block), rgs,
                     visit);
  }
}

template <typename Visitor>
void ForEachPartition(int n, Visitor&& visit) {
  if (n == 0) return;
  std::vector<int> rgs(n, 0);
  PartitionRecurse(1, n, 0, rgs, visit);
}

int64_t Factorial(int k) {
  int64_t out = 1;
  for (int i = 2; i <= k; ++i) out *= i;
  return out;
}

}  // namespace

__int128 CountEmbeddingsViaHoms(const Graph& f, const Graph& g) {
  X2VEC_CHECK_LE(f.NumVertices(), 9)
      << "partition-lattice expansion is for small patterns";
  if (f.NumVertices() == 0) return 1;
  __int128 total = 0;
  ForEachPartition(f.NumVertices(), [&](const std::vector<int>& block_of,
                                        int blocks) {
    const std::optional<Graph> quotient = Quotient(f, block_of, blocks);
    if (!quotient.has_value()) return;
    // Moebius coefficient: product over blocks of (-1)^{|B|-1} (|B|-1)!.
    std::vector<int> block_size(blocks, 0);
    for (int b : block_of) ++block_size[b];
    __int128 mu = 1;
    for (int size : block_size) {
      mu = CheckedMul(mu, ((size - 1) % 2 == 0 ? 1 : -1) *
                              static_cast<__int128>(Factorial(size - 1)));
    }
    total += CheckedMul(mu, CountHoms(*quotient, g));
  });
  return total;
}

__int128 CountSubgraphCopies(const Graph& f, const Graph& g) {
  const __int128 embeddings = CountEmbeddingsViaHoms(f, g);
  const int64_t automorphisms = graph::CountAutomorphisms(f);
  X2VEC_CHECK(embeddings % automorphisms == 0)
      << "emb must be divisible by aut";
  return embeddings / automorphisms;
}

}  // namespace x2vec::hom
