#include "hom/tree_hom.h"

#include <algorithm>

namespace x2vec::hom {
namespace {

using graph::Graph;
using graph::Neighbor;

__int128 CheckedMul(__int128 a, __int128 b) {
  __int128 out;
  X2VEC_CHECK(!__builtin_mul_overflow(a, b, &out))
      << "tree homomorphism count overflowed 128 bits";
  return out;
}

__int128 CheckedAdd(__int128 a, __int128 b) {
  __int128 out;
  X2VEC_CHECK(!__builtin_add_overflow(a, b, &out))
      << "tree homomorphism count overflowed 128 bits";
  return out;
}

// Generic rooted-tree DP parameterised over the accumulator type. For each
// tree vertex t (processed children-first) computes
//   down[t][v] = #homs of the subtree at t mapping t to v,
// where a child c contributes a factor sum_{v' ~ v} down[c][v'] (weighted:
// times the edge weight alpha(v, v')).
template <typename Acc, typename Mul, typename Add>
std::vector<Acc> RootedDp(const Graph& tree, int root, const Graph& g,
                          bool weighted, Mul mul, Add add) {
  X2VEC_CHECK(graph::IsTree(tree)) << "tree pattern required";
  const int nt = tree.NumVertices();
  const int ng = g.NumVertices();

  // Children-first (post-) order via iterative DFS from the root.
  std::vector<int> parent(nt, -1);
  std::vector<int> order;
  order.reserve(nt);
  std::vector<int> stack = {root};
  std::vector<bool> seen(nt, false);
  seen[root] = true;
  while (!stack.empty()) {
    const int t = stack.back();
    stack.pop_back();
    order.push_back(t);
    for (const Neighbor& nb : tree.Neighbors(t)) {
      if (!seen[nb.to]) {
        seen[nb.to] = true;
        parent[nb.to] = t;
        stack.push_back(nb.to);
      }
    }
  }
  std::reverse(order.begin(), order.end());  // Children before parents.

  std::vector<std::vector<Acc>> down(nt, std::vector<Acc>(ng, Acc(1)));
  for (int t : order) {
    std::vector<Acc>& table = down[t];
    // Label constraint: t can only map to label-matching vertices.
    for (int v = 0; v < ng; ++v) {
      if (tree.VertexLabel(t) != g.VertexLabel(v)) table[v] = Acc(0);
    }
    for (const Neighbor& nb : tree.Neighbors(t)) {
      const int child = nb.to;
      if (child == parent[t]) continue;
      for (int v = 0; v < ng; ++v) {
        if (table[v] == Acc(0)) continue;
        Acc sum(0);
        for (const Neighbor& gn : g.Neighbors(v)) {
          Acc term = down[child][gn.to];
          if (weighted) term = mul(term, Acc(gn.weight));
          sum = add(sum, term);
        }
        table[v] = mul(table[v], sum);
      }
    }
  }
  return down[root];
}

}  // namespace

std::vector<__int128> RootedTreeHomVector(const Graph& tree, int root,
                                          const Graph& g) {
  return RootedDp<__int128>(
      tree, root, g, /*weighted=*/false,
      [](__int128 a, __int128 b) { return CheckedMul(a, b); },
      [](__int128 a, __int128 b) { return CheckedAdd(a, b); });
}

__int128 CountTreeHoms(const Graph& tree, const Graph& g) {
  const std::vector<__int128> rooted = RootedTreeHomVector(tree, 0, g);
  __int128 total = 0;
  for (__int128 x : rooted) total = CheckedAdd(total, x);
  return total;
}

double CountTreeHomsDouble(const Graph& tree, const Graph& g) {
  const std::vector<double> rooted = RootedDp<double>(
      tree, 0, g, /*weighted=*/false,
      [](double a, double b) { return a * b; },
      [](double a, double b) { return a + b; });
  double total = 0.0;
  for (double x : rooted) total += x;
  return total;
}

double WeightedTreeHom(const Graph& tree, const Graph& g) {
  const std::vector<double> rooted = RootedDp<double>(
      tree, 0, g, /*weighted=*/true,
      [](double a, double b) { return a * b; },
      [](double a, double b) { return a + b; });
  double total = 0.0;
  for (double x : rooted) total += x;
  return total;
}

__int128 CountForestHoms(const Graph& forest, const Graph& g) {
  __int128 total = 1;
  for (const std::vector<int>& component :
       graph::ConnectedComponents(forest)) {
    const Graph tree = graph::InducedSubgraph(forest, component);
    total = CheckedMul(total, CountTreeHoms(tree, g));
  }
  return total;
}

}  // namespace x2vec::hom
