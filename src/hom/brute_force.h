#pragma once

#include <cstdint>

#include "base/budget.h"
#include "base/status.h"
#include "graph/graph.h"

namespace x2vec::hom {

/// hom(F, G): number of homomorphisms from pattern F into G, by
/// backtracking over partial maps (exact ground truth; exponential in |F|).
/// Homomorphisms preserve vertex labels, edge labels and edge direction.
int64_t CountHomomorphismsBruteForce(const graph::Graph& f,
                                     const graph::Graph& g);

/// hom(F, G; r -> v): homomorphisms mapping the root r of F to v
/// (Section 4.4).
int64_t CountRootedHomomorphismsBruteForce(const graph::Graph& f, int r,
                                           const graph::Graph& g, int v);

/// Weighted homomorphism count hom(F, G) = sum_h prod_{uu' in E(F)}
/// alpha(h(u), h(u')) of Section 4.2 — the partition-function form used by
/// Theorem 4.13. F is unweighted; G carries the weights.
double WeightedHomomorphismBruteForce(const graph::Graph& f,
                                      const graph::Graph& g);

/// emb(F, G): number of *injective* homomorphisms (embeddings), for the
/// walks-vs-paths distinction of Section 4 and the Theorem 4.2 machinery.
int64_t CountEmbeddingsBruteForce(const graph::Graph& f,
                                  const graph::Graph& g);

/// epi(F, G): number of surjective homomorphisms (onto vertices and edges),
/// completing the hom = epi/aut * emb decomposition of Theorem 4.2.
int64_t CountEpimorphismsBruteForce(const graph::Graph& f,
                                    const graph::Graph& g);

/// ---- Budgeted variants (Grohe Section 4: brute-force hom counting is
/// O(n^|F|) and #W[1]-hard in general, so callers must be able to bound
/// it). One work unit = one candidate partial-map extension. The search
/// stops cooperatively and returns kResourceExhausted once the budget is
/// gone; with an unlimited budget the results are identical to the plain
/// functions above (which are thin wrappers over these).

[[nodiscard]] StatusOr<int64_t> CountHomomorphismsBruteForceBudgeted(const graph::Graph& f,
                                                       const graph::Graph& g,
                                                       Budget& budget);

[[nodiscard]] StatusOr<int64_t> CountRootedHomomorphismsBruteForceBudgeted(
    const graph::Graph& f, int r, const graph::Graph& g, int v,
    Budget& budget);

[[nodiscard]] StatusOr<double> WeightedHomomorphismBruteForceBudgeted(const graph::Graph& f,
                                                        const graph::Graph& g,
                                                        Budget& budget);

[[nodiscard]] StatusOr<int64_t> CountEmbeddingsBruteForceBudgeted(const graph::Graph& f,
                                                    const graph::Graph& g,
                                                    Budget& budget);

[[nodiscard]] StatusOr<int64_t> CountEpimorphismsBruteForceBudgeted(const graph::Graph& f,
                                                      const graph::Graph& g,
                                                      Budget& budget);

}  // namespace x2vec::hom
