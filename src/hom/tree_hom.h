#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace x2vec::hom {

/// hom(T, G) for a tree pattern T by dynamic programming over a rooted
/// orientation of T: linear in |T| * (n + m) and exact in 128-bit integers
/// (fatal on overflow). Vertex labels of T and G are respected.
__int128 CountTreeHoms(const graph::Graph& tree, const graph::Graph& g);

/// The rooted vector (hom(T, G; r -> v))_{v in V(G)} of Section 4.4.
std::vector<__int128> RootedTreeHomVector(const graph::Graph& tree, int root,
                                          const graph::Graph& g);

/// Floating-point variant for embedding feature computation, where counts
/// can exceed 2^127 on larger graphs.
double CountTreeHomsDouble(const graph::Graph& tree, const graph::Graph& g);

/// Weighted tree homomorphism partition function (Theorem 4.13): G carries
/// real edge weights; the count becomes sum over maps of the product of
/// image-edge weights.
double WeightedTreeHom(const graph::Graph& tree, const graph::Graph& g);

/// hom(F, G) for a *forest* pattern: product of tree components
/// (hom is multiplicative over disjoint unions of patterns).
__int128 CountForestHoms(const graph::Graph& forest, const graph::Graph& g);

}  // namespace x2vec::hom
