#pragma once

#include "base/rng.h"
#include "graph/graph.h"

namespace x2vec::hom {

/// Homomorphism density t(F, G) = hom(F, G) / n^{|F|} — the normalised
/// quantity underlying the theory of graph limits / graphons that
/// Theorem 4.2 opens onto (Section 4.1 [Lovász]). Exact computation via
/// the library's counting engines.
double HomDensity(const graph::Graph& f, const graph::Graph& g);

/// Monte-Carlo estimate of t(F, G): sample `samples` uniform maps
/// V(F) -> V(G) and report the fraction that are homomorphisms. Unbiased;
/// standard error ~ sqrt(t (1-t) / samples). This is how densities are
/// estimated on graphs too large for exact counting.
double SampledHomDensity(const graph::Graph& f, const graph::Graph& g,
                         int samples, Rng& rng);

/// The W-random graph intuition: for G ~ G(n, p), t(F, G) -> p^{|E(F)|}
/// as n grows (the constant graphon W = p). Returns the limit value for
/// reference.
double ErdosRenyiLimitDensity(const graph::Graph& f, double p);

}  // namespace x2vec::hom
