#include "hom/brute_force.h"

#include <utility>
#include <vector>

namespace x2vec::hom {
namespace {

using graph::Graph;
using graph::Neighbor;

constexpr std::string_view kOperation = "brute-force homomorphism search";

// Generic backtracking over maps V(F) -> V(G). The visitor is called once
// per complete homomorphism with the weight product of its edges (1.0 for
// unweighted G). Each candidate extension spends one budget unit; when the
// budget runs out the search unwinds and reports `aborted()`.
class HomSearch {
 public:
  HomSearch(const Graph& f, const Graph& g, bool injective, Budget& budget)
      : f_(f), g_(g), injective_(injective), budget_(budget),
        mapping_(f.NumVertices(), -1), used_(g.NumVertices(), false) {}

  // Optional pin: force mapping_[root] = target.
  void Pin(int root, int target) {
    pinned_root_ = root;
    pinned_target_ = target;
  }

  // Runs the search, returning the number of homomorphisms; if
  // `weighted_total` is non-null, accumulates the weight products instead.
  int64_t Run(double* weighted_total) {
    count_ = 0;
    weighted_sum_ = 0.0;
    aborted_ = budget_.Exhausted();
    if (!aborted_) Extend(0, 1.0);
    if (weighted_total != nullptr) *weighted_total = weighted_sum_;
    return count_;
  }

  bool aborted() const { return aborted_; }

 private:
  // Checks that mapping f-vertex u to g-vertex w is consistent with all
  // already-mapped neighbours; multiplies the corresponding edge weights
  // into *weight.
  bool Consistent(int u, int w, double* weight) const {
    if (f_.VertexLabel(u) != g_.VertexLabel(w)) return false;
    for (const Neighbor& nb : f_.Neighbors(u)) {
      const int mapped = mapping_[nb.to];
      if (mapped == -1) continue;
      bool found = false;
      for (const Neighbor& gn : g_.Neighbors(w)) {
        if (gn.to == mapped && gn.label == nb.label) {
          found = true;
          *weight *= gn.weight;
          break;
        }
      }
      if (!found) return false;
    }
    if (f_.directed()) {
      for (const Neighbor& nb : f_.InNeighbors(u)) {
        const int mapped = mapping_[nb.to];
        if (mapped == -1) continue;
        bool found = false;
        for (const Neighbor& gn : g_.InNeighbors(w)) {
          if (gn.to == mapped && gn.label == nb.label) {
            found = true;
            *weight *= gn.weight;
            break;
          }
        }
        if (!found) return false;
      }
    }
    return true;
  }

  void Extend(int u, double weight) {
    if (u == f_.NumVertices()) {
      ++count_;
      weighted_sum_ += weight;
      return;
    }
    if (u == pinned_root_) {
      if (!budget_.Spend(1)) {
        aborted_ = true;
        return;
      }
      double w = weight;
      if (!(injective_ && used_[pinned_target_]) &&
          Consistent(u, pinned_target_, &w)) {
        mapping_[u] = pinned_target_;
        if (injective_) used_[pinned_target_] = true;
        Extend(u + 1, w);
        if (injective_) used_[pinned_target_] = false;
        mapping_[u] = -1;
      }
      return;
    }
    for (int w_vertex = 0; w_vertex < g_.NumVertices(); ++w_vertex) {
      if (aborted_) return;
      if (!budget_.Spend(1)) {
        aborted_ = true;
        return;
      }
      if (injective_ && used_[w_vertex]) continue;
      double w = weight;
      if (!Consistent(u, w_vertex, &w)) continue;
      mapping_[u] = w_vertex;
      if (injective_) used_[w_vertex] = true;
      Extend(u + 1, w);
      if (injective_) used_[w_vertex] = false;
      mapping_[u] = -1;
    }
  }

  const Graph& f_;
  const Graph& g_;
  const bool injective_;
  Budget& budget_;
  std::vector<int> mapping_;
  std::vector<bool> used_;
  int pinned_root_ = -1;
  int pinned_target_ = -1;
  int64_t count_ = 0;
  double weighted_sum_ = 0.0;
  bool aborted_ = false;
};

}  // namespace

StatusOr<int64_t> CountHomomorphismsBruteForceBudgeted(const Graph& f,
                                                       const Graph& g,
                                                       Budget& budget) {
  HomSearch search(f, g, /*injective=*/false, budget);
  const int64_t count = search.Run(nullptr);
  if (search.aborted()) return budget.ExhaustedError(kOperation);
  return count;
}

StatusOr<int64_t> CountRootedHomomorphismsBruteForceBudgeted(
    const Graph& f, int r, const Graph& g, int v, Budget& budget) {
  X2VEC_CHECK(r >= 0 && r < f.NumVertices());
  X2VEC_CHECK(v >= 0 && v < g.NumVertices());
  HomSearch search(f, g, /*injective=*/false, budget);
  search.Pin(r, v);
  const int64_t count = search.Run(nullptr);
  if (search.aborted()) return budget.ExhaustedError(kOperation);
  return count;
}

StatusOr<double> WeightedHomomorphismBruteForceBudgeted(const Graph& f,
                                                        const Graph& g,
                                                        Budget& budget) {
  HomSearch search(f, g, /*injective=*/false, budget);
  double total = 0.0;
  search.Run(&total);
  if (search.aborted()) return budget.ExhaustedError(kOperation);
  return total;
}

StatusOr<int64_t> CountEmbeddingsBruteForceBudgeted(const Graph& f,
                                                    const Graph& g,
                                                    Budget& budget) {
  HomSearch search(f, g, /*injective=*/true, budget);
  const int64_t count = search.Run(nullptr);
  if (search.aborted()) return budget.ExhaustedError(kOperation);
  return count;
}

StatusOr<int64_t> CountEpimorphismsBruteForceBudgeted(const Graph& f,
                                                      const Graph& g,
                                                      Budget& budget) {
  if (budget.Exhausted()) return budget.ExhaustedError(kOperation);
  // Inclusion-exclusion over vertex subsets of G would be faster, but the
  // direct filter is clear and only used on tiny instances: count
  // homomorphisms whose image covers all of V(G) and E(G). We re-run the
  // backtracking with an explicit enumeration.
  if (f.NumVertices() < g.NumVertices() || f.NumEdges() < g.NumEdges()) {
    return int64_t{0};
  }
  // Enumerate all homomorphisms via recursion with a callback-style check.
  // Reuse brute force by enumerating maps directly here.
  std::vector<int> mapping(f.NumVertices(), -1);
  int64_t count = 0;
  bool aborted = false;

  // Recursive lambda over partial maps with surjectivity check at the leaf.
  auto consistent = [&](int u, int w) {
    if (f.VertexLabel(u) != g.VertexLabel(w)) return false;
    for (const Neighbor& nb : f.Neighbors(u)) {
      if (mapping[nb.to] == -1) continue;
      bool found = false;
      for (const Neighbor& gn : g.Neighbors(w)) {
        if (gn.to == mapping[nb.to] && gn.label == nb.label) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  auto is_epi = [&]() {
    std::vector<bool> vertex_hit(g.NumVertices(), false);
    for (int u = 0; u < f.NumVertices(); ++u) vertex_hit[mapping[u]] = true;
    for (bool hit : vertex_hit) {
      if (!hit) return false;
    }
    std::vector<bool> edge_hit(g.NumEdges(), false);
    for (const graph::Edge& e : f.Edges()) {
      const int a = mapping[e.u];
      const int b = mapping[e.v];
      for (size_t i = 0; i < g.Edges().size(); ++i) {
        const graph::Edge& ge = g.Edges()[i];
        if ((ge.u == a && ge.v == b) || (!g.directed() && ge.u == b && ge.v == a)) {
          edge_hit[i] = true;
        }
      }
    }
    for (bool hit : edge_hit) {
      if (!hit) return false;
    }
    return true;
  };
  auto extend = [&](auto&& self, int u) -> void {
    if (u == f.NumVertices()) {
      if (is_epi()) ++count;
      return;
    }
    for (int w = 0; w < g.NumVertices(); ++w) {
      if (aborted) return;
      if (!budget.Spend(1)) {
        aborted = true;
        return;
      }
      if (!consistent(u, w)) continue;
      mapping[u] = w;
      self(self, u + 1);
      mapping[u] = -1;
    }
  };
  extend(extend, 0);
  if (aborted) return budget.ExhaustedError(kOperation);
  return count;
}

int64_t CountHomomorphismsBruteForce(const Graph& f, const Graph& g) {
  Budget unlimited;
  return *CountHomomorphismsBruteForceBudgeted(f, g, unlimited);
}

int64_t CountRootedHomomorphismsBruteForce(const Graph& f, int r,
                                           const Graph& g, int v) {
  Budget unlimited;
  return *CountRootedHomomorphismsBruteForceBudgeted(f, r, g, v, unlimited);
}

double WeightedHomomorphismBruteForce(const Graph& f, const Graph& g) {
  Budget unlimited;
  return *WeightedHomomorphismBruteForceBudgeted(f, g, unlimited);
}

int64_t CountEmbeddingsBruteForce(const Graph& f, const Graph& g) {
  Budget unlimited;
  return *CountEmbeddingsBruteForceBudgeted(f, g, unlimited);
}

int64_t CountEpimorphismsBruteForce(const Graph& f, const Graph& g) {
  Budget unlimited;
  return *CountEpimorphismsBruteForceBudgeted(f, g, unlimited);
}

}  // namespace x2vec::hom
