#pragma once

#include <cstdint>
#include <vector>

#include "base/budget.h"
#include "base/status.h"
#include "graph/graph.h"

namespace x2vec::hom {

/// Width of an elimination order (max number of live neighbours at
/// elimination time); the minimum over all orders is the treewidth.
int WidthOfEliminationOrder(const graph::Graph& f,
                            const std::vector<int>& order);

/// Min-fill heuristic elimination order — near-optimal on the small
/// pattern graphs used as homomorphism patterns.
std::vector<int> MinFillEliminationOrder(const graph::Graph& f);

/// Exact treewidth by branch-and-bound over elimination orders (patterns
/// with up to ~9 vertices). Optionally returns an optimal order.
int ExactTreewidth(const graph::Graph& f, std::vector<int>* best_order);

/// hom(F, G) for an arbitrary pattern F by bucket (variable) elimination
/// along the given order: time and memory n_G^{w+1} where w is the order's
/// width — the Dalmau–Jonsson tractability regime of Section 4.3.
/// Exact in 128-bit integers; respects vertex labels.
__int128 CountHomsViaElimination(const graph::Graph& f, const graph::Graph& g,
                                 const std::vector<int>& order);

/// Convenience: hom(F, G) with a min-fill order.
__int128 CountHoms(const graph::Graph& f, const graph::Graph& g);

/// Floating-point variant (for feature vectors on larger G, where counts
/// exceed 128 bits).
double CountHomsDouble(const graph::Graph& f, const graph::Graph& g);

/// ---- Budgeted variants. Both the exact-treewidth branch-and-bound
/// (factorially many elimination orders) and bucket elimination (tables of
/// size n_G^{w+1}) are super-polynomial, so callers can bound them. Work
/// units: one per branch-and-bound node expansion for ExactTreewidth, one
/// per factor-table entry written for the elimination counters. Returns
/// kResourceExhausted when the budget runs out; with an unlimited budget
/// the results match the plain functions above exactly (those are thin
/// wrappers over these).

[[nodiscard]] StatusOr<int> ExactTreewidthBudgeted(const graph::Graph& f,
                                     std::vector<int>* best_order,
                                     Budget& budget);

[[nodiscard]] StatusOr<__int128> CountHomsViaEliminationBudgeted(
    const graph::Graph& f, const graph::Graph& g,
    const std::vector<int>& order, Budget& budget);

[[nodiscard]] StatusOr<__int128> CountHomsBudgeted(const graph::Graph& f,
                                     const graph::Graph& g, Budget& budget);

[[nodiscard]] StatusOr<double> CountHomsDoubleBudgeted(const graph::Graph& f,
                                         const graph::Graph& g,
                                         Budget& budget);

}  // namespace x2vec::hom
