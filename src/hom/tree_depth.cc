#include "hom/tree_depth.h"

#include <map>
#include <vector>

namespace x2vec::hom {
namespace {

using graph::Graph;

// Recursive tree depth over the vertex subset `alive` (bitmask), memoised.
class TreeDepthSolver {
 public:
  explicit TreeDepthSolver(const Graph& g) : g_(g), n_(g.NumVertices()) {
    X2VEC_CHECK_LE(n_, 20) << "exact tree depth is for small patterns";
    adjacency_.resize(n_);
    for (int v = 0; v < n_; ++v) {
      for (const graph::Neighbor& nb : g.Neighbors(v)) {
        adjacency_[v] |= 1u << nb.to;
      }
    }
  }

  int Solve(uint32_t alive) {
    if (alive == 0) return 0;
    const auto it = memo_.find(alive);
    if (it != memo_.end()) return it->second;

    int result;
    const std::vector<uint32_t> components = Components(alive);
    if (components.size() > 1) {
      result = 0;
      for (uint32_t component : components) {
        result = std::max(result, Solve(component));
      }
    } else if (__builtin_popcount(alive) == 1) {
      result = 1;
    } else {
      result = n_ + 1;
      for (int v = 0; v < n_; ++v) {
        if ((alive >> v) & 1u) {
          result = std::min(result, 1 + Solve(alive & ~(1u << v)));
        }
      }
    }
    memo_.emplace(alive, result);
    return result;
  }

 private:
  std::vector<uint32_t> Components(uint32_t alive) const {
    std::vector<uint32_t> components;
    uint32_t remaining = alive;
    while (remaining != 0) {
      uint32_t component = remaining & (~remaining + 1);  // Lowest bit.
      // Flood fill within `alive`.
      while (true) {
        uint32_t frontier = 0;
        uint32_t scan = component;
        while (scan != 0) {
          const int v = __builtin_ctz(scan);
          scan &= scan - 1;
          frontier |= adjacency_[v] & alive;
        }
        const uint32_t grown = component | frontier;
        if (grown == component) break;
        component = grown;
      }
      components.push_back(component);
      remaining &= ~component;
    }
    return components;
  }

  const Graph& g_;
  const int n_;
  std::vector<uint32_t> adjacency_;
  std::map<uint32_t, int> memo_;
};

}  // namespace

int TreeDepth(const Graph& g) {
  if (g.NumVertices() == 0) return 0;
  TreeDepthSolver solver(g);
  return solver.Solve((g.NumVertices() == 32)
                          ? ~0u
                          : ((1u << g.NumVertices()) - 1));
}

bool HasTreeDepthAtMost(const Graph& f, int k) { return TreeDepth(f) <= k; }

}  // namespace x2vec::hom
