#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace x2vec::hom {

/// "Homomorphisms are a good basis for counting small subgraphs"
/// (Section 4 [Curticapean-Dell-Marx]): the number of *embeddings*
/// (injective homomorphisms) of F into G is a fixed linear combination of
/// homomorphism counts of F's quotients,
///   emb(F, G) = sum_{theta in Part(V(F))} mu(theta) * hom(F/theta, G),
/// where mu is the Moebius function of the partition lattice,
/// mu(theta) = prod_{blocks B} (-1)^{|B|-1} (|B|-1)!, and quotients that
/// create self-loops contribute 0. Patterns up to ~8 vertices
/// (Bell(8) = 4140 quotients).
__int128 CountEmbeddingsViaHoms(const graph::Graph& f, const graph::Graph& g);

/// Number of (unlabelled) copies of F in G: sub(F, G) = emb(F, G)/aut(F).
__int128 CountSubgraphCopies(const graph::Graph& f, const graph::Graph& g);

}  // namespace x2vec::hom
