#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "wl/unfolding_tree.h"

namespace x2vec::hom {

/// A homomorphism pattern with a display name, as used in the Hom_F
/// embeddings of Section 4.
struct Pattern {
  graph::Graph graph;
  std::string name;
};

/// The practical pattern family suggested at the end of Section 4's
/// preamble: a small class of binary trees and cycles (default size 20).
/// The family mixes paths, stars, complete binary trees, spiders and cycles
/// so that degree, depth and cyclic structure are all probed.
std::vector<Pattern> DefaultPatternFamily(int count = 20);

/// Raw homomorphism vector Hom_F(G) = (hom(F, G))_F, as doubles.
std::vector<double> HomVector(const graph::Graph& g,
                              const std::vector<Pattern>& patterns);

/// The paper's practically scaled embedding: entry (1/|F|) log(1 + hom(F,G))
/// per pattern F. (The paper uses log hom; we add 1 so patterns with zero
/// homomorphisms — e.g., odd cycles into bipartite graphs — stay finite,
/// preserving exactly the information "hom = 0".)
std::vector<double> LogScaledHomVector(const graph::Graph& g,
                                       const std::vector<Pattern>& patterns);

/// A rooted pattern (F, r) for node embeddings (Section 4.4).
struct RootedPattern {
  graph::Graph graph;
  int root = 0;
  std::string name;
};

/// All rooted trees with at most `max_size` vertices, one representative
/// per root orbit (deduplicated by the rooted canonical string).
std::vector<RootedPattern> RootedTreesUpTo(int max_size);

/// Node-embedding matrix of Section 4.4: row v is
/// ((1/|F|) log(1 + hom(F, G; r -> v)))_{(F, r)} over the rooted patterns.
/// This embedding is inductive: it is defined by the patterns alone.
linalg::Matrix RootedHomNodeEmbedding(const graph::Graph& g,
                                      const std::vector<RootedPattern>& patterns);

/// The node kernel of Section 4.4 ("in the same way ... we can now define
/// node kernels"): Gram matrix of the rooted-hom node embedding over one
/// graph's vertices. Rows/columns coincide exactly for vertices with the
/// same 1-WL colour (Theorem 4.14).
linalg::Matrix RootedHomNodeKernel(const graph::Graph& g,
                                   const std::vector<RootedPattern>& patterns);

}  // namespace x2vec::hom
