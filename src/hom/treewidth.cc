#include "hom/treewidth.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace x2vec::hom {
namespace {

using graph::Graph;

__int128 CheckedMulInt(__int128 a, __int128 b) {
  __int128 out;
  X2VEC_CHECK(!__builtin_mul_overflow(a, b, &out))
      << "homomorphism count overflowed 128 bits";
  return out;
}

__int128 CheckedAddInt(__int128 a, __int128 b) {
  __int128 out;
  X2VEC_CHECK(!__builtin_add_overflow(a, b, &out))
      << "homomorphism count overflowed 128 bits";
  return out;
}

// Dense symmetric boolean adjacency that supports fill-in edges.
class FillGraph {
 public:
  explicit FillGraph(const Graph& f) : n_(f.NumVertices()), adj_(n_ * n_, 0) {
    for (const graph::Edge& e : f.Edges()) {
      adj_[e.u * n_ + e.v] = 1;
      adj_[e.v * n_ + e.u] = 1;
    }
  }

  bool Adjacent(int u, int v) const { return adj_[u * n_ + v] != 0; }
  void Connect(int u, int v) {
    adj_[u * n_ + v] = 1;
    adj_[v * n_ + u] = 1;
  }

  // Eliminates v: connects its live neighbours pairwise; returns their count.
  int Eliminate(int v, const std::vector<bool>& eliminated) {
    std::vector<int> live;
    for (int u = 0; u < n_; ++u) {
      if (u != v && !eliminated[u] && Adjacent(u, v)) live.push_back(u);
    }
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        Connect(live[i], live[j]);
      }
    }
    return static_cast<int>(live.size());
  }

  int FillInCost(int v, const std::vector<bool>& eliminated) const {
    std::vector<int> live;
    for (int u = 0; u < n_; ++u) {
      if (u != v && !eliminated[u] && Adjacent(u, v)) live.push_back(u);
    }
    int missing = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        if (!Adjacent(live[i], live[j])) ++missing;
      }
    }
    return missing;
  }

 private:
  int n_;
  std::vector<char> adj_;
};

// Branch-and-bound over elimination orders. Spends one budget unit per
// node expansion; an exhausted budget aborts the search (`aborted()`).
class TreewidthSearch {
 public:
  TreewidthSearch(const Graph& f, Budget& budget)
      : f_(f), n_(f.NumVertices()), budget_(budget) {}

  int Run(std::vector<int>* best_order) {
    best_width_ = n_ == 0 ? 0 : n_ - 1;
    // Seed the bound with the min-fill order.
    std::vector<int> heuristic = MinFillEliminationOrder(f_);
    best_width_ = WidthOfEliminationOrder(f_, heuristic);
    best_order_ = heuristic;

    aborted_ = budget_.Exhausted();
    if (!aborted_) {
      FillGraph fill(f_);
      std::vector<bool> eliminated(n_, false);
      std::vector<int> order;
      order.reserve(n_);
      Search(fill, eliminated, order, 0);
    }
    if (best_order != nullptr) *best_order = best_order_;
    return best_width_;
  }

  bool aborted() const { return aborted_; }

 private:
  void Search(const FillGraph& fill, std::vector<bool>& eliminated,
              std::vector<int>& order, int width_so_far) {
    if (width_so_far >= best_width_) return;  // Cannot improve.
    if (static_cast<int>(order.size()) == n_) {
      best_width_ = width_so_far;
      best_order_ = order;
      return;
    }
    for (int v = 0; v < n_; ++v) {
      if (aborted_) return;
      if (!budget_.Spend(1)) {
        aborted_ = true;
        return;
      }
      if (eliminated[v]) continue;
      FillGraph next = fill;  // Copy; patterns are tiny.
      eliminated[v] = true;
      const int degree = next.Eliminate(v, eliminated);
      order.push_back(v);
      Search(next, eliminated, order, std::max(width_so_far, degree));
      order.pop_back();
      eliminated[v] = false;
    }
  }

  const Graph& f_;
  const int n_;
  Budget& budget_;
  int best_width_ = 0;
  std::vector<int> best_order_;
  bool aborted_ = false;
};

// A factor over an ordered scope of F-vertices with a dense table indexed
// by assignments into V(G) (mixed radix base n_G, first scope vertex is the
// most significant digit).
template <typename Acc>
struct Factor {
  std::vector<int> scope;
  std::vector<Acc> table;
};

template <typename Acc>
Factor<Acc> Multiply(const Factor<Acc>& a, const Factor<Acc>& b, int ng,
                     Acc (*mul)(Acc, Acc), Budget& budget, bool& aborted) {
  Factor<Acc> out;
  out.scope = a.scope;
  for (int v : b.scope) {
    if (std::find(out.scope.begin(), out.scope.end(), v) == out.scope.end()) {
      out.scope.push_back(v);
    }
  }
  std::sort(out.scope.begin(), out.scope.end());
  int64_t size = 1;
  for (size_t i = 0; i < out.scope.size(); ++i) size *= ng;
  out.table.assign(size, Acc(0));

  // Position of each input-scope vertex within the output scope.
  auto positions = [&](const std::vector<int>& scope) {
    std::vector<int> pos;
    for (int v : scope) {
      pos.push_back(static_cast<int>(
          std::find(out.scope.begin(), out.scope.end(), v) -
          out.scope.begin()));
    }
    return pos;
  };
  const std::vector<int> pos_a = positions(a.scope);
  const std::vector<int> pos_b = positions(b.scope);

  std::vector<int> assignment(out.scope.size(), 0);
  for (int64_t index = 0; index < size; ++index) {
    if (!budget.Spend(1)) {
      aborted = true;
      return out;
    }
    // Decode the assignment.
    int64_t rest = index;
    for (int i = static_cast<int>(out.scope.size()) - 1; i >= 0; --i) {
      assignment[i] = static_cast<int>(rest % ng);
      rest /= ng;
    }
    int64_t ia = 0;
    for (int p : pos_a) ia = ia * ng + assignment[p];
    int64_t ib = 0;
    for (int p : pos_b) ib = ib * ng + assignment[p];
    out.table[index] = mul(a.table[ia], b.table[ib]);
  }
  return out;
}

template <typename Acc>
Factor<Acc> SumOut(const Factor<Acc>& f, int vertex, int ng,
                   Acc (*add)(Acc, Acc), Budget& budget, bool& aborted) {
  const auto it = std::find(f.scope.begin(), f.scope.end(), vertex);
  X2VEC_CHECK(it != f.scope.end());
  const int axis = static_cast<int>(it - f.scope.begin());
  const int arity = static_cast<int>(f.scope.size());

  Factor<Acc> out;
  out.scope = f.scope;
  out.scope.erase(out.scope.begin() + axis);
  int64_t out_size = 1;
  for (int i = 0; i < arity - 1; ++i) out_size *= ng;
  out.table.assign(out_size, Acc(0));

  // Strides in the input table.
  std::vector<int64_t> stride(arity, 1);
  for (int i = arity - 2; i >= 0; --i) stride[i] = stride[i + 1] * ng;

  std::vector<int> assignment(arity - 1, 0);
  for (int64_t out_index = 0; out_index < out_size; ++out_index) {
    if (!budget.Spend(1)) {
      aborted = true;
      return out;
    }
    int64_t rest = out_index;
    for (int i = arity - 2; i >= 0; --i) {
      assignment[i] = static_cast<int>(rest % ng);
      rest /= ng;
    }
    // Base input index with the summed axis at 0.
    int64_t base = 0;
    int out_pos = 0;
    for (int i = 0; i < arity; ++i) {
      if (i == axis) continue;
      base += assignment[out_pos++] * stride[i];
    }
    Acc total(0);
    for (int w = 0; w < ng; ++w) {
      total = add(total, f.table[base + w * stride[axis]]);
    }
    out.table[out_index] = total;
  }
  return out;
}

template <typename Acc>
Acc EliminationCount(const Graph& f, const Graph& g,
                     const std::vector<int>& order, Acc (*mul)(Acc, Acc),
                     Acc (*add)(Acc, Acc), Budget& budget, bool& aborted) {
  X2VEC_CHECK(!f.directed() && !g.directed());
  const int nf = f.NumVertices();
  const int ng = g.NumVertices();
  X2VEC_CHECK_EQ(static_cast<int>(order.size()), nf);
  if (nf == 0) return Acc(1);
  if (ng == 0) return Acc(0);

  std::vector<Factor<Acc>> factors;
  // Unary label factors (also ensure every F-vertex appears in some factor).
  for (int u = 0; u < nf; ++u) {
    Factor<Acc> unary;
    unary.scope = {u};
    unary.table.assign(ng, Acc(0));
    for (int v = 0; v < ng; ++v) {
      if (f.VertexLabel(u) == g.VertexLabel(v)) unary.table[v] = Acc(1);
    }
    factors.push_back(std::move(unary));
  }
  // Binary adjacency factors per pattern edge.
  for (const graph::Edge& e : f.Edges()) {
    Factor<Acc> binary;
    binary.scope = {std::min(e.u, e.v), std::max(e.u, e.v)};
    binary.table.assign(static_cast<int64_t>(ng) * ng, Acc(0));
    for (const graph::Edge& ge : g.Edges()) {
      if (ge.label != e.label) continue;
      binary.table[static_cast<int64_t>(ge.u) * ng + ge.v] = Acc(1);
      binary.table[static_cast<int64_t>(ge.v) * ng + ge.u] = Acc(1);
    }
    factors.push_back(std::move(binary));
  }

  for (int x : order) {
    // Join all factors mentioning x, then sum x out.
    Factor<Acc> joint;
    bool have = false;
    std::vector<Factor<Acc>> rest;
    for (Factor<Acc>& factor : factors) {
      if (std::find(factor.scope.begin(), factor.scope.end(), x) !=
          factor.scope.end()) {
        if (!have) {
          joint = std::move(factor);
          have = true;
        } else {
          joint = Multiply(joint, factor, ng, mul, budget, aborted);
          if (aborted) return Acc(0);
        }
      } else {
        rest.push_back(std::move(factor));
      }
    }
    X2VEC_CHECK(have);
    rest.push_back(SumOut(joint, x, ng, add, budget, aborted));
    if (aborted) return Acc(0);
    factors = std::move(rest);
  }

  // Only empty-scope (scalar) factors remain.
  Acc result(1);
  for (const Factor<Acc>& factor : factors) {
    X2VEC_CHECK(factor.scope.empty());
    result = mul(result, factor.table[0]);
  }
  return result;
}

constexpr std::string_view kTreewidthOperation = "exact treewidth search";
constexpr std::string_view kEliminationOperation =
    "homomorphism counting via elimination";

}  // namespace

int WidthOfEliminationOrder(const Graph& f, const std::vector<int>& order) {
  FillGraph fill(f);
  std::vector<bool> eliminated(f.NumVertices(), false);
  int width = 0;
  for (int v : order) {
    eliminated[v] = true;
    width = std::max(width, fill.Eliminate(v, eliminated));
  }
  return width;
}

std::vector<int> MinFillEliminationOrder(const Graph& f) {
  const int n = f.NumVertices();
  FillGraph fill(f);
  std::vector<bool> eliminated(n, false);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    int best_cost = 0;
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      const int cost = fill.FillInCost(v, eliminated);
      if (best == -1 || cost < best_cost) {
        best = v;
        best_cost = cost;
      }
    }
    eliminated[best] = true;
    fill.Eliminate(best, eliminated);
    order.push_back(best);
  }
  return order;
}

int ExactTreewidth(const Graph& f, std::vector<int>* best_order) {
  Budget unlimited;
  return *ExactTreewidthBudgeted(f, best_order, unlimited);
}

__int128 CountHomsViaElimination(const Graph& f, const Graph& g,
                                 const std::vector<int>& order) {
  Budget unlimited;
  return *CountHomsViaEliminationBudgeted(f, g, order, unlimited);
}

__int128 CountHoms(const Graph& f, const Graph& g) {
  Budget unlimited;
  return *CountHomsBudgeted(f, g, unlimited);
}

double CountHomsDouble(const Graph& f, const Graph& g) {
  Budget unlimited;
  return *CountHomsDoubleBudgeted(f, g, unlimited);
}

StatusOr<int> ExactTreewidthBudgeted(const Graph& f,
                                     std::vector<int>* best_order,
                                     Budget& budget) {
  X2VEC_CHECK_LE(f.NumVertices(), 10)
      << "exact treewidth search is for small patterns";
  if (budget.Exhausted()) return budget.ExhaustedError(kTreewidthOperation);
  TreewidthSearch search(f, budget);
  const int width = search.Run(best_order);
  if (search.aborted()) return budget.ExhaustedError(kTreewidthOperation);
  return width;
}

StatusOr<__int128> CountHomsViaEliminationBudgeted(
    const Graph& f, const Graph& g, const std::vector<int>& order,
    Budget& budget) {
  if (budget.Exhausted()) return budget.ExhaustedError(kEliminationOperation);
  bool aborted = false;
  const __int128 count = EliminationCount<__int128>(
      f, g, order, &CheckedMulInt, &CheckedAddInt, budget, aborted);
  if (aborted) return budget.ExhaustedError(kEliminationOperation);
  return count;
}

StatusOr<__int128> CountHomsBudgeted(const Graph& f, const Graph& g,
                                     Budget& budget) {
  return CountHomsViaEliminationBudgeted(f, g, MinFillEliminationOrder(f),
                                         budget);
}

StatusOr<double> CountHomsDoubleBudgeted(const Graph& f, const Graph& g,
                                         Budget& budget) {
  if (budget.Exhausted()) return budget.ExhaustedError(kEliminationOperation);
  static const auto mul = [](double a, double b) { return a * b; };
  static const auto add = [](double a, double b) { return a + b; };
  bool aborted = false;
  const double count = EliminationCount<double>(
      f, g, MinFillEliminationOrder(f), +mul, +add, budget, aborted);
  if (aborted) return budget.ExhaustedError(kEliminationOperation);
  return count;
}

}  // namespace x2vec::hom
