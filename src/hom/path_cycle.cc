#include "hom/path_cycle.h"

namespace x2vec::hom {

using linalg::IntMatrix;

__int128 CountPathHoms(int k, const graph::Graph& g) {
  X2VEC_CHECK_GE(k, 1);
  if (g.NumVertices() == 0) return 0;
  IntMatrix power = IntMatrix::Identity(g.NumVertices());
  const IntMatrix a = g.IntAdjacencyMatrix();
  for (int step = 0; step < k - 1; ++step) power = power.Multiply(a);
  return power.Sum();
}

__int128 CountCycleHoms(int k, const graph::Graph& g) {
  X2VEC_CHECK_GE(k, 3);
  if (g.NumVertices() == 0) return 0;
  const IntMatrix a = g.IntAdjacencyMatrix();
  IntMatrix power = a;
  for (int step = 1; step < k; ++step) power = power.Multiply(a);
  return power.Trace();
}

std::vector<__int128> PathHomVector(const graph::Graph& g, int max_k) {
  X2VEC_CHECK_GE(max_k, 1);
  std::vector<__int128> out;
  out.reserve(max_k);
  if (g.NumVertices() == 0) {
    out.assign(max_k, 0);
    return out;
  }
  const IntMatrix a = g.IntAdjacencyMatrix();
  IntMatrix power = IntMatrix::Identity(g.NumVertices());
  out.push_back(power.Sum());  // hom(P_1, G) = n.
  for (int k = 2; k <= max_k; ++k) {
    power = power.Multiply(a);
    out.push_back(power.Sum());
  }
  return out;
}

std::vector<__int128> CycleHomVector(const graph::Graph& g, int max_k) {
  X2VEC_CHECK_GE(max_k, 3);
  std::vector<__int128> out;
  out.reserve(max_k - 2);
  if (g.NumVertices() == 0) {
    out.assign(max_k - 2, 0);
    return out;
  }
  const IntMatrix a = g.IntAdjacencyMatrix();
  IntMatrix power = a.Multiply(a);
  for (int k = 3; k <= max_k; ++k) {
    power = power.Multiply(a);
    out.push_back(power.Trace());
  }
  return out;
}

}  // namespace x2vec::hom
