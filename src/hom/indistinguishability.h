#pragma once

#include <vector>

#include "graph/graph.h"

namespace x2vec::hom {

/// The homomorphism-indistinguishability quasi-order of Section 4.1: each
/// decider answers "Hom_F(G) = Hom_F(H)?" for a restriction class F,
/// through the paper's characterisation theorems (exact, no truncation):
///
///   trees    (Thm 4.4)  <->  1-WL indistinguishability
///   paths    (Thm 4.6)  <->  rational solvability of (3.2) + (3.3)
///   cycles   (Thm 4.3)  <->  co-spectrality (exact char. polynomials)
///   all F    (Thm 4.2)  <->  isomorphism
///
/// Truncated direct comparisons of the hom vectors are provided alongside
/// so the theorems can be validated empirically (see bench/).

/// Hom_T(G) = Hom_T(H) over all trees, decided via 1-WL (Theorem 4.4).
bool HomIndistinguishableTrees(const graph::Graph& g, const graph::Graph& h);

/// Hom_P(G) = Hom_P(H) over all paths, decided exactly by testing rational
/// solvability of AX = XB with unit row/column sums (Theorem 4.6).
bool HomIndistinguishablePaths(const graph::Graph& g, const graph::Graph& h);

/// Hom_C(G) = Hom_C(H) over all cycles, decided by exact co-spectrality of
/// the integer adjacency matrices (Theorem 4.3).
bool HomIndistinguishableCycles(const graph::Graph& g, const graph::Graph& h);

/// Hom_G(G) = Hom_G(H) over all graphs = isomorphism (Theorem 4.2; decided
/// by the exact isomorphism search).
bool HomIndistinguishableAllGraphs(const graph::Graph& g,
                                   const graph::Graph& h);

/// Direct comparison: hom(T, G) == hom(T, H) for every tree T with at most
/// `max_pattern_size` vertices (empirical side of Theorem 4.4).
bool TreeHomVectorsEqual(const graph::Graph& g, const graph::Graph& h,
                         int max_pattern_size);

/// Direct comparison: hom(P_k, ·) equal for k = 1..max_k. With
/// max_k >= |G| + |H| this decides Hom_P equality outright.
bool PathHomVectorsEqual(const graph::Graph& g, const graph::Graph& h,
                         int max_k);

/// Direct comparison: hom(C_k, ·) equal for k = 3..max_k. With
/// max_k >= 2 * max(|G|, |H|) + 2 this decides Hom_C equality
/// (power sums up to n determine the spectrum).
bool CycleHomVectorsEqual(const graph::Graph& g, const graph::Graph& h,
                          int max_k);

/// Weighted-graph analogue for Theorem 4.13: weighted tree partition
/// functions hom(T, ·) equal for all trees up to `max_pattern_size`
/// (floating-point comparison with tolerance).
bool WeightedTreeHomVectorsEqual(const graph::Graph& g, const graph::Graph& h,
                                 int max_pattern_size, double tol = 1e-6);

}  // namespace x2vec::hom
