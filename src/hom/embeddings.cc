#include "hom/embeddings.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/enumeration.h"
#include "hom/tree_hom.h"
#include "hom/treewidth.h"

namespace x2vec::hom {
namespace {

using graph::Graph;

// Complete binary tree with `levels` levels (levels >= 1; 2^levels - 1
// vertices).
Graph CompleteBinaryTree(int levels) {
  const int n = (1 << levels) - 1;
  Graph t(n);
  for (int v = 1; v < n; ++v) t.AddEdge((v - 1) / 2, v);
  return t;
}

// Spider: one centre with `legs` paths of length `leg_length` attached.
Graph Spider(int legs, int leg_length) {
  Graph t(1 + legs * leg_length);
  int next = 1;
  for (int leg = 0; leg < legs; ++leg) {
    int previous = 0;
    for (int step = 0; step < leg_length; ++step) {
      t.AddEdge(previous, next);
      previous = next++;
    }
  }
  return t;
}

// Rooted canonical string (children multisets, labels ignored) for root
// orbit deduplication.
std::string RootedCanonical(const Graph& tree, int v, int parent) {
  std::vector<std::string> children;
  for (const graph::Neighbor& nb : tree.Neighbors(v)) {
    if (nb.to != parent) children.push_back(RootedCanonical(tree, nb.to, v));
  }
  std::sort(children.begin(), children.end());
  std::string out = "(";
  for (const std::string& c : children) out += c;
  out += ")";
  return out;
}

}  // namespace

std::vector<Pattern> DefaultPatternFamily(int count) {
  X2VEC_CHECK_GE(count, 1);
  std::vector<Pattern> family;
  // Trees: paths, stars, binary trees, spiders (treewidth 1) ...
  family.push_back({Graph::Path(2), "P2"});
  family.push_back({Graph::Path(3), "P3"});
  family.push_back({Graph::Path(4), "P4"});
  family.push_back({Graph::Path(5), "P5"});
  family.push_back({Graph::Path(7), "P7"});
  family.push_back({Graph::Star(3), "S3"});
  family.push_back({Graph::Star(4), "S4"});
  family.push_back({Graph::Star(5), "S5"});
  family.push_back({CompleteBinaryTree(2), "B2"});
  family.push_back({CompleteBinaryTree(3), "B3"});
  family.push_back({Spider(3, 2), "Spider3x2"});
  family.push_back({Spider(4, 2), "Spider4x2"});
  // ... and cycles (treewidth 2).
  family.push_back({Graph::Cycle(3), "C3"});
  family.push_back({Graph::Cycle(4), "C4"});
  family.push_back({Graph::Cycle(5), "C5"});
  family.push_back({Graph::Cycle(6), "C6"});
  family.push_back({Graph::Cycle(7), "C7"});
  family.push_back({Graph::Cycle(8), "C8"});
  family.push_back({Graph::Cycle(9), "C9"});
  family.push_back({Graph::Cycle(10), "C10"});
  // Extend with longer paths/cycles if more were requested.
  int extra_path = 8;
  int extra_cycle = 11;
  while (static_cast<int>(family.size()) < count) {
    if (family.size() % 2 == 0) {
      family.push_back(
          {Graph::Path(extra_path), "P" + std::to_string(extra_path)});
      ++extra_path;
    } else {
      family.push_back(
          {Graph::Cycle(extra_cycle), "C" + std::to_string(extra_cycle)});
      ++extra_cycle;
    }
  }
  family.resize(count);
  return family;
}

std::vector<double> HomVector(const Graph& g,
                              const std::vector<Pattern>& patterns) {
  std::vector<double> out;
  out.reserve(patterns.size());
  for (const Pattern& pattern : patterns) {
    if (graph::IsTree(pattern.graph)) {
      out.push_back(CountTreeHomsDouble(pattern.graph, g));
    } else {
      out.push_back(CountHomsDouble(pattern.graph, g));
    }
  }
  return out;
}

std::vector<double> LogScaledHomVector(const Graph& g,
                                       const std::vector<Pattern>& patterns) {
  std::vector<double> raw = HomVector(g, patterns);
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i] = std::log1p(raw[i]) / patterns[i].graph.NumVertices();
  }
  return raw;
}

std::vector<RootedPattern> RootedTreesUpTo(int max_size) {
  std::vector<RootedPattern> out;
  std::set<std::string> seen;
  int index = 0;
  for (const Graph& tree : graph::TreesUpTo(max_size)) {
    ++index;
    for (int r = 0; r < tree.NumVertices(); ++r) {
      const std::string canon = RootedCanonical(tree, r, -1);
      if (seen.insert(canon).second) {
        out.push_back({tree, r,
                       "T" + std::to_string(tree.NumVertices()) + "#" +
                           std::to_string(index) + "@" + std::to_string(r)});
      }
    }
  }
  return out;
}

linalg::Matrix RootedHomNodeEmbedding(
    const Graph& g, const std::vector<RootedPattern>& patterns) {
  const int n = g.NumVertices();
  linalg::Matrix embedding(n, static_cast<int>(patterns.size()));
  for (size_t j = 0; j < patterns.size(); ++j) {
    const std::vector<__int128> counts =
        RootedTreeHomVector(patterns[j].graph, patterns[j].root, g);
    const double scale = 1.0 / patterns[j].graph.NumVertices();
    for (int v = 0; v < n; ++v) {
      embedding(v, static_cast<int>(j)) =
          std::log1p(static_cast<double>(counts[v])) * scale;
    }
  }
  return embedding;
}

linalg::Matrix RootedHomNodeKernel(const Graph& g,
                                   const std::vector<RootedPattern>& patterns) {
  const linalg::Matrix embedding = RootedHomNodeEmbedding(g, patterns);
  return embedding * embedding.Transposed();
}

}  // namespace x2vec::hom
