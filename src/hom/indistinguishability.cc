#include "hom/indistinguishability.h"

#include <algorithm>
#include <cmath>

#include "graph/enumeration.h"
#include "graph/isomorphism.h"
#include "hom/path_cycle.h"
#include "hom/tree_hom.h"
#include "linalg/charpoly.h"
#include "linalg/linear_system.h"
#include "wl/color_refinement.h"

namespace x2vec::hom {

using graph::Graph;
using linalg::Rational;
using linalg::RationalMatrix;

bool HomIndistinguishableTrees(const Graph& g, const Graph& h) {
  if (g.NumVertices() != h.NumVertices()) return false;
  return wl::WlIndistinguishable(g, h);
}

bool HomIndistinguishablePaths(const Graph& g, const Graph& h) {
  // Theorem 4.6: Hom_P(G) = Hom_P(H) iff the linear system
  //   AX = XB,  row sums = column sums = 1
  // has a rational (not necessarily non-negative) solution. We assemble the
  // system over exact rationals in the nm variables X_vw.
  const int n = g.NumVertices();
  const int m = h.NumVertices();
  if (n != m) return false;  // Row/col sum equations force equal orders.
  if (n == 0) return true;

  const linalg::IntMatrix a = g.IntAdjacencyMatrix();
  const linalg::IntMatrix b = h.IntAdjacencyMatrix();

  const int vars = n * m;
  const int equations = n * m + n + m;
  RationalMatrix system(equations, vars);
  std::vector<Rational> rhs(equations, Rational(0));
  auto var = [m](int v, int w) { return v * m + w; };

  // (3.2): sum_v' A_{vv'} X_{v'w} - sum_w' X_{vw'} B_{w'w} = 0.
  int row = 0;
  for (int v = 0; v < n; ++v) {
    for (int w = 0; w < m; ++w, ++row) {
      for (int vp = 0; vp < n; ++vp) {
        if (a(v, vp) != 0) {
          system(row, var(vp, w)) += Rational(static_cast<int64_t>(a(v, vp)));
        }
      }
      for (int wp = 0; wp < m; ++wp) {
        if (b(wp, w) != 0) {
          system(row, var(v, wp)) -= Rational(static_cast<int64_t>(b(wp, w)));
        }
      }
    }
  }
  // (3.3): row sums and column sums equal 1.
  for (int v = 0; v < n; ++v, ++row) {
    for (int w = 0; w < m; ++w) system(row, var(v, w)) = Rational(1);
    rhs[row] = Rational(1);
  }
  for (int w = 0; w < m; ++w, ++row) {
    for (int v = 0; v < n; ++v) system(row, var(v, w)) = Rational(1);
    rhs[row] = Rational(1);
  }
  X2VEC_CHECK_EQ(row, equations);

  return SolveRational(system, rhs).consistent;
}

bool HomIndistinguishableCycles(const Graph& g, const Graph& h) {
  if (g.NumVertices() != h.NumVertices()) return false;
  const std::vector<__int128> pg =
      linalg::CharacteristicPolynomial(g.IntAdjacencyMatrix());
  const std::vector<__int128> ph =
      linalg::CharacteristicPolynomial(h.IntAdjacencyMatrix());
  return pg == ph;
}

bool HomIndistinguishableAllGraphs(const Graph& g, const Graph& h) {
  return graph::AreIsomorphic(g, h);
}

bool TreeHomVectorsEqual(const Graph& g, const Graph& h,
                         int max_pattern_size) {
  for (const Graph& tree : graph::TreesUpTo(max_pattern_size)) {
    if (CountTreeHoms(tree, g) != CountTreeHoms(tree, h)) return false;
  }
  return true;
}

bool PathHomVectorsEqual(const Graph& g, const Graph& h, int max_k) {
  return PathHomVector(g, max_k) == PathHomVector(h, max_k);
}

bool CycleHomVectorsEqual(const Graph& g, const Graph& h, int max_k) {
  return CycleHomVector(g, max_k) == CycleHomVector(h, max_k);
}

bool WeightedTreeHomVectorsEqual(const Graph& g, const Graph& h,
                                 int max_pattern_size, double tol) {
  for (const Graph& tree : graph::TreesUpTo(max_pattern_size)) {
    const double a = WeightedTreeHom(tree, g);
    const double b = WeightedTreeHom(tree, h);
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    if (std::abs(a - b) > tol * scale) return false;
  }
  return true;
}

}  // namespace x2vec::hom
