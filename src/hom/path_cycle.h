#pragma once

#include <vector>

#include "graph/graph.h"
#include "linalg/charpoly.h"

namespace x2vec::hom {

/// hom(P_k, G) for the path on k vertices (k-1 edges): the number of walks
/// of length k-1, i.e., 1^T A^{k-1} 1 — exact in 128-bit arithmetic.
__int128 CountPathHoms(int k, const graph::Graph& g);

/// hom(C_k, G) for the cycle on k >= 3 vertices: trace(A^k) (the spectral
/// identity behind Theorem 4.3).
__int128 CountCycleHoms(int k, const graph::Graph& g);

/// The truncated path-homomorphism vector (hom(P_1,G), ..., hom(P_max,G)).
/// Equality of these vectors for k up to |G| + |H| decides Hom_P equality
/// (the walk generating function is rational of bounded degree).
std::vector<__int128> PathHomVector(const graph::Graph& g, int max_k);

/// The truncated cycle vector (hom(C_3,G), ..., hom(C_max,G)).
std::vector<__int128> CycleHomVector(const graph::Graph& g, int max_k);

}  // namespace x2vec::hom
