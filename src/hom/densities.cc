#include "hom/densities.h"

#include <cmath>

#include "hom/tree_hom.h"
#include "hom/treewidth.h"

namespace x2vec::hom {

double HomDensity(const graph::Graph& f, const graph::Graph& g) {
  X2VEC_CHECK_GT(g.NumVertices(), 0);
  const double count = graph::IsTree(f) ? CountTreeHomsDouble(f, g)
                                        : CountHomsDouble(f, g);
  return count / std::pow(static_cast<double>(g.NumVertices()),
                          f.NumVertices());
}

double SampledHomDensity(const graph::Graph& f, const graph::Graph& g,
                         int samples, Rng& rng) {
  X2VEC_CHECK_GT(samples, 0);
  X2VEC_CHECK_GT(g.NumVertices(), 0);
  const int nf = f.NumVertices();
  std::vector<int> image(nf);
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    for (int u = 0; u < nf; ++u) {
      image[u] = static_cast<int>(UniformInt(rng, 0, g.NumVertices() - 1));
    }
    bool is_hom = true;
    for (const graph::Edge& e : f.Edges()) {
      if (!g.HasEdge(image[e.u], image[e.v])) {
        is_hom = false;
        break;
      }
    }
    hits += is_hom ? 1 : 0;
  }
  return static_cast<double>(hits) / samples;
}

double ErdosRenyiLimitDensity(const graph::Graph& f, double p) {
  return std::pow(p, f.NumEdges());
}

}  // namespace x2vec::hom
