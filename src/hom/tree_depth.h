#pragma once

#include "graph/graph.h"

namespace x2vec::hom {

/// Exact tree depth of a graph (Theorem 4.10's parameter; Nešetřil &
/// Ossona de Mendez): td(G) = 0 for the empty graph, 1 for K1, and for a
/// connected G, td(G) = 1 + min_v td(G - v); for disconnected graphs the
/// maximum over components. Exponential-time recursion with memoisation
/// over vertex subsets — patterns up to ~16 vertices.
int TreeDepth(const graph::Graph& g);

/// True iff hom(F, .) restricted to patterns of tree depth <= k contains F
/// itself — convenience filter for building the TD_k pattern families of
/// Theorem 4.10.
bool HasTreeDepthAtMost(const graph::Graph& f, int k);

}  // namespace x2vec::hom
