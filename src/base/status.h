#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "base/check.h"

namespace x2vec {

/// Error category for recoverable failures (IO, parsing, invalid user data).
/// Library algorithms with contract violations use X2VEC_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,  ///< A budget (deadline / work quota) was exceeded.
  kIoError,            ///< A filesystem operation failed (possibly transient).
  kCorruptedData,      ///< Stored bytes failed a checksum / structure check.
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success-or-error result, modelled on absl::Status.
/// [[nodiscard]] on the class makes discarding any returned Status a
/// compiler warning (an error under X2VEC_WERROR) at every call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status CorruptedData(std::string message) {
    return Status(StatusCode::kCorruptedData, std::move(message));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to the value when the
/// status is not OK is a checked fatal error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value, mirroring absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    X2VEC_CHECK(!status_.ok()) << "StatusOr built from OK status without value";
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    X2VEC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    X2VEC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    X2VEC_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace x2vec
