#ifndef X2VEC_BASE_STATUS_H_
#define X2VEC_BASE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "base/check.h"

namespace x2vec {

/// Error category for recoverable failures (IO, parsing, invalid user data).
/// Library algorithms with contract violations use X2VEC_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,  ///< A budget (deadline / work quota) was exceeded.
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success-or-error result, modelled on absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to the value when the
/// status is not OK is a checked fatal error.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value, mirroring absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    X2VEC_CHECK(!status_.ok()) << "StatusOr built from OK status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    X2VEC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    X2VEC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    X2VEC_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace x2vec

#endif  // X2VEC_BASE_STATUS_H_
