#pragma once

#include <cmath>
#include <initializer_list>
#include <string>
#include <string_view>

#include "base/status.h"

namespace x2vec {

/// One named option-value constraint for ValidateOptions below.
struct OptionCheck {
  enum class Rule {
    kPositive,        ///< value > 0 (epochs, dimension, window, ...).
    kNonNegative,     ///< value >= 0 (negatives, margins, regularisers).
    kPositiveFinite,  ///< value > 0 and finite (learning rates).
    kFinite,          ///< finite (exponents, thresholds).
  };

  std::string_view name;
  double value = 0.0;
  Rule rule = Rule::kPositive;
};

/// Shared fail-fast validator for trainer option structs: returns
/// kInvalidArgument naming the first offending option, or OK. Keeps every
/// trainer from silently accepting non-positive epochs/dimensions and
/// producing empty or degenerate models.
[[nodiscard]] inline Status ValidateOptions(std::initializer_list<OptionCheck> checks) {
  for (const OptionCheck& check : checks) {
    std::string_view constraint;
    switch (check.rule) {
      case OptionCheck::Rule::kPositive:
        if (!(check.value > 0.0)) constraint = "must be positive";
        break;
      case OptionCheck::Rule::kNonNegative:
        if (!(check.value >= 0.0)) constraint = "must be non-negative";
        break;
      case OptionCheck::Rule::kPositiveFinite:
        if (!(check.value > 0.0) || !std::isfinite(check.value)) {
          constraint = "must be positive and finite";
        }
        break;
      case OptionCheck::Rule::kFinite:
        if (!std::isfinite(check.value)) constraint = "must be finite";
        break;
    }
    if (!constraint.empty()) {
      return Status::InvalidArgument(std::string(check.name) + " " +
                                     std::string(constraint) + ", got " +
                                     std::to_string(check.value));
    }
  }
  return Status::Ok();
}

}  // namespace x2vec
