#include "base/budget.h"

#include <string>

namespace x2vec {

Budget Budget::WorkUnits(int64_t units) {
  X2VEC_CHECK_GE(units, 0);
  Budget budget;
  budget.work_limit_ = units;
  return budget;
}

Budget Budget::Deadline(double seconds) {
  X2VEC_CHECK_GE(seconds, 0.0);
  Budget budget;
  budget.deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
  return budget;
}

Budget Budget::DeadlineAndWorkUnits(double seconds, int64_t units) {
  Budget budget = Deadline(seconds);
  X2VEC_CHECK_GE(units, 0);
  budget.work_limit_ = units;
  return budget;
}

bool Budget::SpendSlow(int64_t units) {
  if (exhausted_) return false;
  work_spent_ += units;
  // A quota of N admits exactly N units. The zero-unit Exhausted() probe
  // trips as soon as no headroom remains — so a zero quota (or a fully
  // spent one) fails fast at entry, before any work starts.
  if (work_limit_.has_value() &&
      (work_spent_ > *work_limit_ ||
       (units == 0 && work_spent_ >= *work_limit_))) {
    exhausted_ = true;
    return false;
  }
  if (deadline_.has_value() && work_spent_ >= next_clock_check_) {
    next_clock_check_ = work_spent_ + kClockCheckStride;
    if (std::chrono::steady_clock::now() >= *deadline_) {
      exhausted_ = true;
      deadline_tripped_ = true;
      return false;
    }
  }
  return true;
}

Status Budget::ExhaustedError(std::string_view operation) const {
  std::string message(operation);
  if (deadline_tripped_) {
    message += ": deadline exceeded after " + std::to_string(work_spent_) +
               " work units";
  } else {
    message += ": work budget of " +
               std::to_string(work_limit_.value_or(0)) +
               " units exhausted";
  }
  return Status::ResourceExhausted(std::move(message));
}

Budget BudgetSpec::MakeBudget() const {
  if (work_units.has_value() && deadline_seconds.has_value()) {
    return Budget::DeadlineAndWorkUnits(*deadline_seconds, *work_units);
  }
  if (work_units.has_value()) return Budget::WorkUnits(*work_units);
  if (deadline_seconds.has_value()) return Budget::Deadline(*deadline_seconds);
  return Budget::Unlimited();
}

}  // namespace x2vec
