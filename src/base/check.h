#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace x2vec {
namespace internal_check {

/// Prints a fatal-error banner and aborts. Used by the X2VEC_CHECK family;
/// never call directly.
[[noreturn]] void CheckFailed(std::string_view file, int line,
                              std::string_view condition,
                              std::string_view message);

/// Stream-collecting helper so that `X2VEC_CHECK(x) << "context"` works.
/// The destructor fires at the end of the full expression, after all
/// streaming, and aborts the process.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

/// glog-style voidifier: `&` binds less tightly than `<<`, so all streamed
/// context is collected before the builder is consumed, and the conditional
/// expression has type void on both branches.
struct Voidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace internal_check
}  // namespace x2vec

/// Aborts with a diagnostic if `condition` is false. Active in all build
/// modes; use for API contract violations that indicate programmer error.
/// Supports streamed context: `X2VEC_CHECK(i < n) << "i=" << i;`
#define X2VEC_CHECK(condition)                        \
  (condition) ? (void)0                               \
              : ::x2vec::internal_check::Voidify() &  \
                    ::x2vec::internal_check::CheckMessageBuilder( \
                        __FILE__, __LINE__, #condition)

#define X2VEC_CHECK_EQ(a, b) X2VEC_CHECK((a) == (b))
#define X2VEC_CHECK_NE(a, b) X2VEC_CHECK((a) != (b))
#define X2VEC_CHECK_LT(a, b) X2VEC_CHECK((a) < (b))
#define X2VEC_CHECK_LE(a, b) X2VEC_CHECK((a) <= (b))
#define X2VEC_CHECK_GT(a, b) X2VEC_CHECK((a) > (b))
#define X2VEC_CHECK_GE(a, b) X2VEC_CHECK((a) >= (b))

/// Debug-only variant; compiled out (but still syntax-checked) in NDEBUG.
#ifdef NDEBUG
#define X2VEC_DCHECK(condition) X2VEC_CHECK(true || (condition))
#else
#define X2VEC_DCHECK(condition) X2VEC_CHECK(condition)
#endif
