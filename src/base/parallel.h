#pragma once

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "base/budget.h"
#include "base/check.h"
#include "base/status.h"

namespace x2vec {

/// Parallel execution runtime shared by the library's hot paths (Gram
/// matrices, WL sweeps, walk corpora, sharded trainers).
///
/// The contract is determinism by construction: every parallelized path
/// must produce bit-identical results at any thread count, including 1.
/// ParallelFor guarantees the building blocks of that contract:
///
///   - Chunk boundaries depend only on the range and the grain (the
///     automatic grain is a function of n alone), never on the thread
///     count or on which worker picks up which chunk.
///   - The caller blocks until every chunk has run, so chunk bodies may
///     write to disjoint slices of caller-owned storage.
///   - Callers that need an ordered reduction accumulate per chunk and
///     fold the per-chunk results in chunk-index order after the loop.
///
/// Randomised parallel work derives one Rng stream per logical work item
/// via Rng::Fork(seed, item) (never per thread), so draws are tied to the
/// item, not to the scheduling.

/// Number of hardware threads (>= 1 even when the runtime reports 0).
int HardwareThreads();

/// Resolves a thread-count setting from an X2VEC_THREADS-style string:
/// a positive integer wins, anything absent or malformed falls back to
/// `hardware`. Exposed separately so tests can cover the parsing without
/// mutating the process environment.
int ResolveThreadCount(const char* env_value, int hardware);

/// The logical thread count used by ParallelFor. Resolution order:
/// SetThreadCount() override, then the X2VEC_THREADS environment variable
/// (read once, on first use), then HardwareThreads().
int ThreadCount();

/// Programmatic override of the logical thread count. Values < 1 reset to
/// the environment/hardware default. Thread-safe; takes effect on the next
/// ParallelFor. Changing it never changes results, only scheduling.
void SetThreadCount(int threads);

/// True while the calling thread is executing inside a ParallelFor chunk.
/// Nested ParallelFor calls detect this and run inline (serially) instead
/// of re-entering the pool — the nested-submit deadlock guard.
bool InParallelRegion();

/// Fixed-size worker pool. Most callers never touch this directly and go
/// through ParallelFor, which lazily grows the shared pool; the class is
/// public for tests and for callers with bespoke scheduling needs.
/// Submitted tasks are drained (run to completion) before the destructor
/// returns.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Current number of worker threads.
  int workers() const;

  /// Grows the pool to at least `workers` threads (never shrinks).
  void EnsureWorkers(int workers);

  /// The process-wide pool used by ParallelFor. Created on first use and
  /// sized to ThreadCount() - 1 (the calling thread is the extra
  /// participant); grown on demand when the logical thread count rises.
  static ThreadPool& Shared();

 private:
  void WorkerMain();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

/// Runs `body(begin, end)` over [0, n) split into chunks of `grain`
/// indices (`grain` <= 0 selects an automatic grain that depends only on
/// n). The calling thread participates; up to ThreadCount() - 1 shared
/// pool workers help. Blocks until every chunk has finished or the loop
/// is cancelled.
///
/// Cancellation: the first chunk returning a non-OK Status stops the loop
/// — remaining chunks are abandoned — and that Status is returned (when
/// several chunks fail, the lowest chunk index wins). Exceptions thrown
/// by a chunk cancel the same way and are rethrown in the caller. Either
/// way partial effects of completed chunks remain; error paths carry no
/// bit-identical guarantee (success paths do).
[[nodiscard]] Status ParallelFor(int64_t n, int64_t grain,
                   const std::function<Status(int64_t, int64_t)>& body);

/// Maps i -> fn(i) over [0, n) in parallel and returns the results in
/// index order. The element type must be default-constructible; fn must
/// not throw.
template <typename Fn>
auto ParallelMap(int64_t n, Fn&& fn)
    -> std::vector<decltype(fn(static_cast<int64_t>(0)))> {
  using T = decltype(fn(static_cast<int64_t>(0)));
  std::vector<T> out(static_cast<size_t>(n));
  const Status status = ParallelFor(n, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[static_cast<size_t>(i)] = fn(i);
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return out;
}

/// Thread-safe adapter over a (single-threaded) Budget, for spending from
/// inside ParallelFor chunks. Exhaustion latches across workers via an
/// atomic fast path, so a blown budget in any worker cancels the whole
/// loop as soon as every other worker next probes the gate.
class BudgetGate {
 public:
  explicit BudgetGate(Budget& budget) : budget_(budget) {}

  BudgetGate(const BudgetGate&) = delete;
  BudgetGate& operator=(const BudgetGate&) = delete;

  /// Thread-safe Budget::Spend. Prefer one coarse call per chunk (or per
  /// natural work item) over per-element calls: the gate takes a mutex.
  bool Spend(int64_t units = 1) {
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_.Spend(units)) return true;
    exhausted_.store(true, std::memory_order_relaxed);
    return false;
  }

  /// Thread-safe Budget::ExhaustedError.
  [[nodiscard]] Status ExhaustedError(std::string_view operation) {
    std::lock_guard<std::mutex> lock(mu_);
    return budget_.ExhaustedError(operation);
  }

 private:
  Budget& budget_;
  std::mutex mu_;
  std::atomic<bool> exhausted_{false};
};

/// Maps a flat index t in [0, n(n+1)/2) to the pair (i, j) with
/// 0 <= i <= j < n, enumerating the upper triangle row by row — the
/// decomposition used to parallelize symmetric Gram-matrix fills.
inline std::pair<int, int> UpperTriangleIndex(int64_t t, int64_t n) {
  const auto row_start = [n](int64_t r) { return r * (2 * n - r + 1) / 2; };
  // Initial guess from the quadratic inverse, corrected by +-1 steps
  // (sqrt rounding can be off by one near row boundaries).
  const double b = 2.0 * n + 1.0;
  int64_t i = static_cast<int64_t>((b - std::sqrt(b * b - 8.0 * t)) / 2.0);
  i = std::min(std::max<int64_t>(i, 0), n - 1);
  while (i > 0 && row_start(i) > t) --i;
  while (i + 1 < n && row_start(i + 1) <= t) ++i;
  return {static_cast<int>(i), static_cast<int>(i + (t - row_start(i)))};
}

}  // namespace x2vec
