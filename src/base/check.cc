#include "base/check.h"

namespace x2vec {
namespace internal_check {

void CheckFailed(std::string_view file, int line, std::string_view condition,
                 std::string_view message) {
  std::cerr << "[x2vec FATAL] " << file << ":" << line
            << " check failed: " << condition;
  if (!message.empty()) {
    std::cerr << " — " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal_check
}  // namespace x2vec
