#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace x2vec {

/// Durable filesystem layer. Every persistent artifact the library writes
/// (datasets, run reports, model checkpoints) goes through this interface
/// so that
///   - writes are crash-consistent: WriteFileAtomic stages the bytes in a
///     temp file, fsyncs it, then renames over the destination, so readers
///     only ever observe the old complete file or the new complete file —
///     never a truncated half-write;
///   - reads are bounded and typed: ReadFile enforces a byte cap and
///     reports kNotFound / kIoError with the path and byte offset instead
///     of handing parsers a silently truncated stream;
///   - every failure mode is injectable: FaultInjectingFs below scripts
///     torn writes, short reads, bit flips, ENOSPC and rename failures
///     into any code path that takes an Fs&, extending the
///     FaultInjectingRng idiom from the robustness suite to storage.
///
/// The raw-file-io lint rule bans std::ofstream / fopen writes outside
/// this layer, so crash consistency cannot silently regress.
class Fs {
 public:
  /// Refuse to slurp files larger than this by default (a corrupt header
  /// or a mis-pointed path must not drive a multi-gigabyte allocation).
  static constexpr int64_t kDefaultMaxReadBytes = int64_t{1} << 30;  // 1 GiB

  virtual ~Fs() = default;

  /// Reads the whole file. kNotFound when the path does not exist,
  /// kIoError (with path and byte offset) on read failures or when the
  /// file exceeds `max_bytes`.
  [[nodiscard]] virtual StatusOr<std::string> ReadFile(
      const std::string& path, int64_t max_bytes = kDefaultMaxReadBytes) = 0;

  /// Durably replaces `path` with `content`: write `path`.tmp, flush +
  /// fsync, rename over `path`, fsync the parent directory. On any error
  /// the destination is untouched and the temp file is removed (best
  /// effort). Returns kIoError with the failing step and errno text.
  [[nodiscard]] virtual Status WriteFileAtomic(const std::string& path,
                                               std::string_view content) = 0;

  /// Deletes a file. Missing files are kNotFound; other failures kIoError.
  [[nodiscard]] virtual Status Remove(const std::string& path) = 0;

  /// Names (not paths) of the regular files in `dir`, sorted. kNotFound
  /// when the directory does not exist.
  [[nodiscard]] virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Creates `dir` and any missing parents (ok when already present).
  [[nodiscard]] virtual Status CreateDirs(const std::string& dir) = 0;

  /// Recursively deletes `path` (ok when absent). For test scratch dirs.
  [[nodiscard]] virtual Status RemoveTree(const std::string& path) = 0;

  /// True when `path` exists (any file type).
  [[nodiscard]] virtual bool Exists(const std::string& path) = 0;
};

/// POSIX implementation; the only code in the tree that opens files for
/// writing directly.
class RealFs : public Fs {
 public:
  [[nodiscard]] StatusOr<std::string> ReadFile(
      const std::string& path,
      int64_t max_bytes = kDefaultMaxReadBytes) override;
  [[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                       std::string_view content) override;
  [[nodiscard]] Status Remove(const std::string& path) override;
  [[nodiscard]] StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) override;
  [[nodiscard]] Status CreateDirs(const std::string& dir) override;
  [[nodiscard]] Status RemoveTree(const std::string& path) override;
  [[nodiscard]] bool Exists(const std::string& path) override;
};

/// Process-wide RealFs instance, the default when callers do not inject
/// their own (CheckpointOptions::fs, SaveDataset, WriteRunReport).
Fs& DefaultFs();

/// Bounded retry policy for transient read failures (NFS hiccups, racing
/// writers). Only kIoError is retried: kNotFound and kCorruptedData are
/// definitive answers, not transient conditions.
struct ReadRetryPolicy {
  int attempts = 3;        ///< Total tries (>= 1).
  int backoff_ms = 0;      ///< Sleep before retry k is backoff_ms << (k-1).
};

/// ReadFile with retry/backoff per the policy. Counts each retry in the
/// `fs.read_retries` metric; returns the last error when every attempt
/// fails.
[[nodiscard]] StatusOr<std::string> ReadFileWithRetry(
    Fs& fs, const std::string& path,
    const ReadRetryPolicy& policy = ReadRetryPolicy{},
    int64_t max_bytes = Fs::kDefaultMaxReadBytes);

/// Deterministic fault scripting for one FaultInjectingFs. Operation
/// indices are 0-based and count calls of that kind on the wrapper; -1
/// disables a fault. Faults that "succeed" (torn write, short read, bit
/// flip) model silent storage corruption and must be caught by the
/// checksum layer above; faults that fail return kIoError and model
/// transient or environmental errors (ENOSPC, rename failure, flaky
/// reads).
struct FsFaultPlan {
  int torn_write_at = -1;        ///< Persist only a prefix, report success.
  int enospc_write_at = -1;      ///< Fail the write with kIoError (no file).
  int rename_fail_at = -1;       ///< Stage the temp, fail the rename step.
  int short_read_at = -1;        ///< Return only a prefix of the file.
  int bit_flip_read_at = -1;     ///< Flip one bit of the bytes returned.
  int transient_read_failures = 0;  ///< First N reads fail with kIoError.
};

/// Fs decorator injecting the FsFaultPlan into a delegate (DefaultFs()
/// unless another is given). Deterministic: the same plan over the same
/// call sequence injects the same faults. Untouched operations forward
/// unchanged.
class FaultInjectingFs : public Fs {
 public:
  explicit FaultInjectingFs(FsFaultPlan plan) : FaultInjectingFs(plan, DefaultFs()) {}
  FaultInjectingFs(FsFaultPlan plan, Fs& delegate)
      : plan_(plan), delegate_(delegate) {}

  [[nodiscard]] StatusOr<std::string> ReadFile(
      const std::string& path,
      int64_t max_bytes = kDefaultMaxReadBytes) override;
  [[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                       std::string_view content) override;
  [[nodiscard]] Status Remove(const std::string& path) override {
    return delegate_.Remove(path);
  }
  [[nodiscard]] StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    return delegate_.ListDir(dir);
  }
  [[nodiscard]] Status CreateDirs(const std::string& dir) override {
    return delegate_.CreateDirs(dir);
  }
  [[nodiscard]] Status RemoveTree(const std::string& path) override {
    return delegate_.RemoveTree(path);
  }
  [[nodiscard]] bool Exists(const std::string& path) override {
    return delegate_.Exists(path);
  }

  [[nodiscard]] int64_t reads() const { return reads_; }
  [[nodiscard]] int64_t writes() const { return writes_; }
  [[nodiscard]] int64_t faults_injected() const { return faults_injected_; }

 private:
  FsFaultPlan plan_;
  Fs& delegate_;
  int64_t reads_ = 0;
  int64_t writes_ = 0;
  int64_t faults_injected_ = 0;
};

}  // namespace x2vec
