#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace x2vec::trace {

/// Lightweight RAII tracing: nestable named spans with wall-clock and
/// work-unit attribution, collected into a process-wide buffer and dumped
/// as a JSON trace report.
///
/// Spans measure wall time, so their durations are inherently
/// nondeterministic; the deterministic part of the observability layer is
/// base/metrics. Tracing never feeds back into algorithm state, so
/// enabling or disabling it cannot change any computed result.
///
/// Collection is off by default (a disabled Span costs one relaxed atomic
/// load); harnesses that want a run_report.json call SetEnabled(true) up
/// front and WriteRunReport() at the end.

/// One finished span. `depth` is the nesting level on the recording thread
/// (0 = top-level); `start_us` is measured from the process trace epoch so
/// reports from one run share a time axis.
struct SpanRecord {
  std::string name;
  int depth = 0;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  int64_t work_units = 0;
};

/// Turns span collection on or off. Spans already recorded are kept.
void SetEnabled(bool enabled);
[[nodiscard]] bool Enabled();

/// Drops every recorded span (the enabled flag is unchanged).
void Clear();

/// Copies the finished spans recorded so far, in completion order.
[[nodiscard]] std::vector<SpanRecord> Spans();

/// JSON array of the finished spans:
/// [{"name":...,"depth":N,"start_us":N,"duration_us":N,"work_units":N}].
[[nodiscard]] std::string SpansToJson();

/// RAII span: records [construction, destruction) under `name` when
/// tracing is enabled. Nesting is tracked per thread; AddWork attributes
/// work units (pairs trained, Gram entries filled) to the span and is safe
/// to call from parallel workers while the span is open.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Adds `units` of work to this span's attribution. Thread-safe.
  void AddWork(int64_t units) {
    if (enabled_) work_.fetch_add(units, std::memory_order_relaxed);
  }

 private:
  bool enabled_ = false;
  std::string name_;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<int64_t> work_{0};
};

/// Plain wall-clock stopwatch for callers that need elapsed seconds as a
/// value (core::RunMethodSuite's MethodOutcome.seconds). Lives here so raw
/// std::chrono stays inside the base/ timing whitelist.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction.
  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes `{"metrics": <global metrics snapshot>, "spans": [...]}` to
/// `path` — the machine-readable run report the tab_* harnesses emit.
/// The write goes through base/fs's atomic temp-file + rename path, so a
/// crash never leaves a truncated report; failures are kIoError naming
/// the failing step.
[[nodiscard]] Status WriteRunReport(const std::string& path);

}  // namespace x2vec::trace
