#include "base/trace.h"

#include <mutex>
#include <sstream>

#include "base/fs.h"
#include "base/metrics.h"

namespace x2vec::trace {
namespace {

struct TraceBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();  // Leaked: process lifetime.
  return *buffer;
}

std::atomic<bool> g_enabled{false};

/// Per-thread open-span depth, so nested spans report their level without
/// global coordination.
thread_local int t_depth = 0;

/// Process trace epoch: the steady-clock instant of the first span (or
/// first query), so start_us offsets are small and share one axis.
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

int64_t MicrosSince(std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // Span names are identifiers; control chars are noise.
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void SetEnabled(bool enabled) {
  if (enabled) Epoch();  // Pin the time axis before the first span.
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Clear() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.clear();
}

std::vector<SpanRecord> Spans() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.spans;
}

std::string SpansToJson() {
  const std::vector<SpanRecord> spans = Spans();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out << ",";
    const SpanRecord& s = spans[i];
    out << "{\"name\":\"" << JsonEscape(s.name) << "\",\"depth\":" << s.depth
        << ",\"start_us\":" << s.start_us
        << ",\"duration_us\":" << s.duration_us
        << ",\"work_units\":" << s.work_units << "}";
  }
  out << "]";
  return out.str();
}

Span::Span(std::string_view name) {
  enabled_ = Enabled();
  if (!enabled_) return;
  name_ = std::string(name);
  depth_ = t_depth++;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!enabled_) return;
  --t_depth;
  const auto end = std::chrono::steady_clock::now();
  SpanRecord record;
  record.name = std::move(name_);
  record.depth = depth_;
  record.start_us = MicrosSince(Epoch(), start_);
  record.duration_us = MicrosSince(start_, end);
  record.work_units = work_.load(std::memory_order_relaxed);
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(std::move(record));
}

Status WriteRunReport(const std::string& path) {
  std::ostringstream report;
  report << "{\"metrics\":" << metrics::GlobalSnapshot().ToJson()
         << ",\"spans\":" << SpansToJson() << "}\n";
  // Atomic durable write: a crash mid-report leaves the previous report
  // (or none), never a truncated JSON file.
  return DefaultFs().WriteFileAtomic(path, report.str());
}

}  // namespace x2vec::trace
