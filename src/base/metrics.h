#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace x2vec::metrics {

/// Deterministic process-wide metrics: named counters, gauges and
/// fixed-bucket histograms, registered on first use and folded into
/// snapshots on demand.
///
/// Determinism contract: counter and histogram cells are integers and the
/// fold over shards is integer addition, so a snapshot's *values* are
/// bit-identical at any thread count whenever the instrumented work itself
/// is (the base/parallel contract). Gauges are last-write-wins doubles and
/// must only be written from deterministic serial points (an epoch
/// boundary, a method end), never from racing workers.
///
/// Instrumentation points go through the X2VEC_METRIC* macros below, which
/// compile to nothing under -DX2VEC_METRICS_DISABLED and respect the
/// runtime SetEnabled() switch otherwise. Metrics never feed back into
/// algorithm state (no RNG draws, no control flow), so enabling or
/// disabling them cannot change any computed result.

/// Number of independent cells a Counter distributes increments over.
/// Power of two; large enough that concurrent workers rarely share a cell.
inline constexpr int kCounterShards = 32;

/// Monotonic counter with thread-sharded cells. Add() picks the calling
/// thread's cell (cache-line padded, relaxed atomic); Value() folds all
/// cells with integer addition, so the total is independent of which
/// thread performed which increment.
class Counter {
 public:
  void Add(int64_t n) {
    cells_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] int64_t Value() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  static int ShardIndex();

  std::array<Cell, kCounterShards> cells_;
};

/// Last-write-wins scalar (e.g. the learning rate at an epoch boundary).
/// Write only from serial code; see the determinism contract above.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  [[nodiscard]] double Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed, registration-time bucket upper bounds. A sample x
/// lands in the first bucket with x <= bound; samples above every bound
/// land in the implicit overflow bucket, so counts() has bounds().size()+1
/// entries. Cells are plain atomics (histograms record per-epoch or
/// per-call summaries, not per-pair hot-loop traffic).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<int64_t> counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> cells_;
};

/// Looks up (registering on first use) the counter / gauge with this name.
/// The returned reference lives for the process; hot paths cache it in a
/// function-local static (the X2VEC_METRIC* macros do this).
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);

/// Looks up (registering on first use) the histogram `name`. The bounds
/// are fixed by the first registration; later callers receive the same
/// histogram regardless of the bounds they pass.
Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

/// Runtime switch consulted by the X2VEC_METRIC* macros (default: on).
/// Exists so tests can prove outputs are bit-identical with metrics on and
/// off without rebuilding; the compile-time kill switch is
/// -DX2VEC_METRICS_DISABLED.
void SetEnabled(bool enabled);
[[nodiscard]] bool Enabled();

/// One histogram's folded state inside a Snapshot.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;  ///< bounds.size() + 1 entries (overflow last).

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Point-in-time fold of every registered metric. Snapshots subtract
/// (Delta) so a caller can attribute counter/histogram traffic to one
/// region of work; gauges carry the later value.
struct Snapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const Snapshot&) const = default;

  /// Counter value by name; 0 when absent (counters register lazily, so a
  /// metric whose code path never ran is simply missing).
  [[nodiscard]] int64_t counter(std::string_view name) const;

  /// Gauge value by name; 0.0 when absent.
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Compact single-object JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"bounds":[...],"counts":[...]}}}.
  [[nodiscard]] std::string ToJson() const;
};

/// Folds every registered metric into a Snapshot.
[[nodiscard]] Snapshot GlobalSnapshot();

/// Metric traffic between two snapshots of the same process: counters and
/// histogram counts subtract entrywise, gauges take `after`'s value.
[[nodiscard]] Snapshot Delta(const Snapshot& before, const Snapshot& after);

}  // namespace x2vec::metrics

/// Wraps one instrumentation statement. Compiles out entirely under
/// -DX2VEC_METRICS_DISABLED; otherwise runs `op` when the runtime switch
/// is on. `op` must be metrics-only (no algorithm state, no RNG).
#if defined(X2VEC_METRICS_DISABLED)
#define X2VEC_METRIC(op) ((void)0)
#else
#define X2VEC_METRIC(op)              \
  do {                                \
    if (::x2vec::metrics::Enabled()) { \
      op;                             \
    }                                 \
  } while (0)
#endif

/// Increments counter `name` by `n`. The registry lookup happens once per
/// call site (function-local static), so the steady-state cost is one
/// relaxed atomic add.
#define X2VEC_METRIC_COUNT(name, n)                                         \
  X2VEC_METRIC(static ::x2vec::metrics::Counter& x2vec_metric_counter =     \
                   ::x2vec::metrics::GetCounter(name);                      \
               x2vec_metric_counter.Add(n))

/// Sets gauge `name` to `value` (serial code only; see base/metrics.h).
#define X2VEC_METRIC_GAUGE(name, value)                                 \
  X2VEC_METRIC(static ::x2vec::metrics::Gauge& x2vec_metric_gauge =     \
                   ::x2vec::metrics::GetGauge(name);                    \
               x2vec_metric_gauge.Set(value))

/// Records `value` into histogram `name` with the given bucket bounds
/// (braced-init-list, e.g. ({1.0, 2.0, 4.0})). Bounds are fixed by the
/// first call site that runs.
#define X2VEC_METRIC_OBSERVE(name, bounds, value)                           \
  X2VEC_METRIC(static ::x2vec::metrics::Histogram& x2vec_metric_histogram = \
                   ::x2vec::metrics::GetHistogram(name,                     \
                                                  std::vector<double> bounds); \
               x2vec_metric_histogram.Observe(value))
