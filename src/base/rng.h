#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/status.h"

namespace x2vec {

/// SplitMix64 mix of a base seed and a stream id — the seed-derivation
/// function behind Rng::Fork. Statistically decorrelates sibling streams
/// even for consecutive stream ids, and is a pure function of its inputs,
/// so derived streams are stable across platforms, runs and thread counts.
inline uint64_t MixSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 0x632be59bd9b4e019ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic random source shared across the library. Every randomised
/// algorithm takes an Rng& (or a seed) explicitly so experiments are
/// reproducible; there is no global generator.
///
/// Rng wraps std::mt19937_64 behind a virtual raw-draw so the fault-
/// injection harness (tests/robustness_test.cc) can subclass it and feed
/// algorithms scripted or degenerate bit streams. The default path forwards
/// straight to the engine, so draws — and therefore every experiment — are
/// bit-identical to a bare mt19937_64.
class Rng {
 public:
  using result_type = std::mt19937_64::result_type;

  Rng() = default;
  explicit Rng(uint64_t seed) : engine_(seed) {}
  virtual ~Rng() = default;

  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }

  /// Raw 64-bit draw; the single override point for fault injection.
  virtual result_type operator()() { return engine_(); }

  /// Derives an independent generator for logical stream `stream` of
  /// `base_seed` via MixSeed. Parallel algorithms fork one stream per work
  /// item (a start node, a sequence) — never per thread — so their draws
  /// are bit-identical at any thread count.
  static Rng Fork(uint64_t base_seed, uint64_t stream) {
    return Rng(MixSeed(base_seed, stream));
  }

  /// Serialises the full mt19937_64 engine state as whitespace-separated
  /// decimal words (the standard stream format), so a training run can be
  /// checkpointed at an epoch barrier and resumed with the exact same draw
  /// sequence. Subclass state (fault-injection counters) is not captured.
  [[nodiscard]] std::string SaveEngineState() const;

  /// Restores an engine state produced by SaveEngineState. Returns
  /// kCorruptedData when the text does not parse as a full engine state;
  /// the engine is left untouched on failure.
  [[nodiscard]] Status LoadEngineState(const std::string& state);

 protected:
  std::mt19937_64 engine_;
};

/// Creates a generator from a fixed seed.
inline Rng MakeRng(uint64_t seed) { return Rng(seed); }

/// Uniform integer in [lo, hi] inclusive.
inline int64_t UniformInt(Rng& rng, int64_t lo, int64_t hi) {
  X2VEC_CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

/// Uniform real in [lo, hi).
inline double UniformReal(Rng& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/// Standard normal draw.
inline double Gaussian(Rng& rng) {
  return std::normal_distribution<double>(0.0, 1.0)(rng);
}

/// Bernoulli draw with success probability p.
inline bool Coin(Rng& rng, double p) {
  return std::bernoulli_distribution(p)(rng);
}

/// Returns a uniformly shuffled copy of [0, n).
std::vector<int> RandomPermutation(int n, Rng& rng);

/// Samples k distinct indices from [0, n) uniformly (k <= n).
std::vector<int> SampleWithoutReplacement(int n, int k, Rng& rng);

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
/// Used by node2vec transition sampling and SGNS negative sampling.
class AliasTable {
 public:
  /// Builds the table from unnormalised non-negative weights (not all zero).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  int Sample(Rng& rng) const;

  int size() const { return static_cast<int>(prob_.size()); }

 private:
  std::vector<double> prob_;
  std::vector<int> alias_;
};

}  // namespace x2vec
