#pragma once

namespace x2vec {

/// Numeric self-healing knobs shared by the iterative trainers (SGNS,
/// PV-DBOW, TransE, RESCAL). After every epoch the trainer checks that its
/// parameters and epoch loss are numerically healthy: all entries finite
/// and below max_abs, loss finite. On a violation it
///   1. halves (scales by lr_backoff) the effective learning rate,
///   2. reseeds the offending rows with fresh small random values,
///   3. tightens the gradient-clip threshold by clip_backoff, and
///   4. retries the failed epoch,
/// up to max_retries times in total before giving up with kInternal.
///
/// The defaults are calibrated so a healthy run is bit-identical to an
/// unguarded one: the clip threshold and max_abs bound are orders of
/// magnitude above anything a converging run produces, so neither the clip
/// nor the reseed ever engages unless training has actually diverged.
struct RecoveryPolicy {
  int max_retries = 3;      ///< K: total NaN/Inf recoveries before kInternal.
  double lr_backoff = 0.5;  ///< Learning-rate multiplier per recovery.
  /// L2 gradient-norm clip (SGNS centre updates, TransE steps). Healthy
  /// gradients are O(learning_rate), far below this.
  double clip_norm = 100.0;
  double clip_backoff = 0.5;  ///< Clip-threshold multiplier per recovery.
  /// Entries with magnitude above this count as divergence even when
  /// finite (runaway-but-not-yet-Inf parameters poison downstream Grams).
  double max_abs = 1e8;
};

}  // namespace x2vec
