#include "base/rng.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace x2vec {

std::string Rng::SaveEngineState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::LoadEngineState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::CorruptedData(
        "mt19937_64 engine state does not parse (expected " +
        std::to_string(std::mt19937_64::state_size) +
        " decimal words plus a position)");
  }
  engine_ = restored;
  return Status::Ok();
}

std::vector<int> RandomPermutation(int n, Rng& rng) {
  X2VEC_CHECK_GE(n, 0);
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

std::vector<int> SampleWithoutReplacement(int n, int k, Rng& rng) {
  X2VEC_CHECK_GE(k, 0);
  X2VEC_CHECK_LE(k, n);
  // Partial Fisher-Yates: only the first k positions are materialised.
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(rng, i, n - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const int n = static_cast<int>(weights.size());
  X2VEC_CHECK_GT(n, 0);
  double total = 0.0;
  for (double w : weights) {
    X2VEC_CHECK_GE(w, 0.0);
    total += w;
  }
  X2VEC_CHECK_GT(total, 0.0) << "alias table needs a positive total weight";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (int i = 0; i < n; ++i) {
    scaled[i] = weights[i] * n / total;
  }
  std::vector<int> small;
  std::vector<int> large;
  for (int i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    int s = small.back();
    small.pop_back();
    int l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (int i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (int i : small) {
    // Only reachable through floating-point round-off; treat as full bucket.
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

int AliasTable::Sample(Rng& rng) const {
  const int n = size();
  int bucket = static_cast<int>(UniformInt(rng, 0, n - 1));
  if (UniformReal(rng, 0.0, 1.0) < prob_[bucket]) {
    return bucket;
  }
  return alias_[bucket];
}

}  // namespace x2vec
