#include "base/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <algorithm>
#include <thread>
#include <utility>

#include "base/metrics.h"

namespace x2vec {
namespace {

std::string ErrnoText(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

/// "/a/b/c" -> "/a/b"; "c" -> "."; "/c" -> "/".
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Closes `fd` preserving the caller's errno.
void CloseQuietly(int fd) {
  const int saved = errno;
  ::close(fd);
  errno = saved;
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open directory for fsync: " + dir + ": " +
                           ErrnoText(errno));
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IoError("fsync failed for directory " + dir +
                                    ": " + ErrnoText(errno));
    CloseQuietly(fd);
    return status;
  }
  CloseQuietly(fd);
  return Status::Ok();
}

Status RemoveTreeImpl(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::Ok();
    return Status::IoError("lstat failed for " + path + ": " +
                           ErrnoText(errno));
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return Status::IoError("cannot open directory " + path + ": " +
                             ErrnoText(errno));
    }
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      Status status = RemoveTreeImpl(path + "/" + name);
      if (!status.ok()) {
        ::closedir(dir);
        return status;
      }
    }
    ::closedir(dir);
    if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("rmdir failed for " + path + ": " +
                             ErrnoText(errno));
    }
    return Status::Ok();
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError("unlink failed for " + path + ": " +
                           ErrnoText(errno));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> RealFs::ReadFile(const std::string& path,
                                       int64_t max_bytes) {
  X2VEC_METRIC_COUNT("fs.reads", 1);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IoError("cannot open " + path + " for reading: " +
                           ErrnoText(errno));
  }
  std::string content;
  int64_t offset = 0;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IoError("read failed for " + path +
                                      " at byte offset " +
                                      std::to_string(offset) + ": " +
                                      ErrnoText(errno));
      CloseQuietly(fd);
      return status;
    }
    if (n == 0) break;
    offset += n;
    if (offset > max_bytes) {
      CloseQuietly(fd);
      return Status::IoError("file " + path + " exceeds the read bound of " +
                             std::to_string(max_bytes) +
                             " bytes (stopped at byte offset " +
                             std::to_string(offset) + ")");
    }
    content.append(buffer, static_cast<size_t>(n));
  }
  CloseQuietly(fd);
  return content;
}

Status RealFs::WriteFileAtomic(const std::string& path,
                               std::string_view content) {
  X2VEC_METRIC_COUNT("fs.writes", 1);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IoError("cannot open temp file " + tmp + " for writing: " +
                           ErrnoText(errno));
  }
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IoError("write failed for " + tmp +
                                      " at byte offset " +
                                      std::to_string(written) + ": " +
                                      ErrnoText(errno));
      CloseQuietly(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IoError("fsync failed for " + tmp + ": " +
                                    ErrnoText(errno));
    CloseQuietly(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    Status status = Status::IoError("close failed for " + tmp + ": " +
                                    ErrnoText(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IoError("rename " + tmp + " -> " + path +
                                    " failed: " + ErrnoText(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename is only durable once the directory entry itself is synced.
  return FsyncDir(ParentDir(path));
}

Status RealFs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IoError("unlink failed for " + path + ": " +
                           ErrnoText(errno));
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> RealFs::ListDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such directory: " + dir);
    }
    return Status::IoError("cannot open directory " + dir + ": " +
                           ErrnoText(errno));
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    const std::string full = dir + "/" + name;
    if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

Status RealFs::CreateDirs(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("CreateDirs requires a non-empty path");
  }
  // Walk the path component by component, creating what is missing.
  size_t pos = 0;
  while (pos < dir.size()) {
    size_t slash = dir.find('/', pos + 1);
    if (slash == std::string::npos) slash = dir.size();
    const std::string prefix = dir.substr(0, slash);
    if (!prefix.empty() && prefix != "/") {
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IoError("mkdir failed for " + prefix + ": " +
                               ErrnoText(errno));
      }
    }
    pos = slash;
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError("path exists but is not a directory: " + dir);
  }
  return Status::Ok();
}

Status RealFs::RemoveTree(const std::string& path) {
  return RemoveTreeImpl(path);
}

bool RealFs::Exists(const std::string& path) {
  struct stat st;
  return ::lstat(path.c_str(), &st) == 0;
}

Fs& DefaultFs() {
  static RealFs* fs = new RealFs();
  return *fs;
}

StatusOr<std::string> ReadFileWithRetry(Fs& fs, const std::string& path,
                                        const ReadRetryPolicy& policy,
                                        int64_t max_bytes) {
  const int attempts = std::max(1, policy.attempts);
  StatusOr<std::string> result = fs.ReadFile(path, max_bytes);
  for (int attempt = 1; attempt < attempts; ++attempt) {
    // Only kIoError is plausibly transient; kNotFound / kCorruptedData are
    // definitive and retrying them just delays the caller's fallback logic.
    if (result.ok() || result.status().code() != StatusCode::kIoError) {
      return result;
    }
    X2VEC_METRIC_COUNT("fs.read_retries", 1);
    if (policy.backoff_ms > 0) {
      const int64_t wait_ms = static_cast<int64_t>(policy.backoff_ms)
                              << (attempt - 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
    result = fs.ReadFile(path, max_bytes);
  }
  return result;
}

StatusOr<std::string> FaultInjectingFs::ReadFile(const std::string& path,
                                                 int64_t max_bytes) {
  const int64_t index = reads_++;
  if (index < plan_.transient_read_failures) {
    ++faults_injected_;
    X2VEC_METRIC_COUNT("fs.faults_injected", 1);
    return Status::IoError("injected transient read failure #" +
                           std::to_string(index) + " for " + path);
  }
  StatusOr<std::string> result = delegate_.ReadFile(path, max_bytes);
  if (!result.ok()) return result;
  std::string content = std::move(result).value();
  if (index == plan_.short_read_at) {
    ++faults_injected_;
    X2VEC_METRIC_COUNT("fs.faults_injected", 1);
    content.resize(content.size() / 2);
  }
  if (index == plan_.bit_flip_read_at && !content.empty()) {
    ++faults_injected_;
    X2VEC_METRIC_COUNT("fs.faults_injected", 1);
    content[content.size() / 2] ^= 0x20;
  }
  return content;
}

Status FaultInjectingFs::WriteFileAtomic(const std::string& path,
                                         std::string_view content) {
  const int64_t index = writes_++;
  if (index == plan_.enospc_write_at) {
    ++faults_injected_;
    X2VEC_METRIC_COUNT("fs.faults_injected", 1);
    return Status::IoError("injected ENOSPC while writing " + path + ": " +
                           ErrnoText(ENOSPC));
  }
  if (index == plan_.rename_fail_at) {
    ++faults_injected_;
    X2VEC_METRIC_COUNT("fs.faults_injected", 1);
    // The temp file was staged but the publish step failed: the destination
    // is untouched, exactly as RealFs guarantees on a real rename error.
    return Status::IoError("injected rename failure while publishing " + path);
  }
  if (index == plan_.torn_write_at) {
    ++faults_injected_;
    X2VEC_METRIC_COUNT("fs.faults_injected", 1);
    // A torn write persists a prefix yet reports success — the checksum
    // layer above, not the caller, must catch this on the next read.
    return delegate_.WriteFileAtomic(path,
                                     content.substr(0, content.size() / 2));
  }
  return delegate_.WriteFileAtomic(path, content);
}

}  // namespace x2vec
