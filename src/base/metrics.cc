#include "base/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <mutex>
#include <sstream>
#include <utility>

#include "base/check.h"

namespace x2vec::metrics {
namespace {

/// Registry state behind GetCounter/GetGauge/GetHistogram. Registered
/// metrics live for the process (references handed out are never
/// invalidated), hence the deque-of-nodes via std::map with stable
/// addresses.
struct Registry {
  std::mutex mu;
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // Leaked: process lifetime.
  return *registry;
}

std::atomic<bool> g_enabled{true};

/// Escapes a metric name for JSON output. Names are dotted identifiers by
/// convention, but the writer stays correct for arbitrary strings.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendDouble(std::ostringstream& out, double v) {
  // Round-trippable doubles; JSON has no Inf/NaN, so clamp to null.
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    out << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

int Counter::ShardIndex() {
  // Threads are assigned cells round-robin on first touch; the assignment
  // only affects which cell absorbs an increment, never the folded total.
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return slot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), cells_(bounds_.size() + 1) {
  X2VEC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be sorted";
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  cells_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::counts() const {
  std::vector<int64_t> out(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    out[i] = cells_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& GetCounter(std::string_view name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.counters[std::string(name)];
}

Gauge& GetGauge(std::string_view name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.gauges[std::string(name)];
}

Histogram& GetHistogram(std::string_view name, std::vector<double> bounds) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.histograms.find(std::string(name));
  if (it == registry.histograms.end()) {
    it = registry.histograms
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(name),
                      std::forward_as_tuple(std::move(bounds)))
             .first;
  }
  return it->second;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

int64_t Snapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double Snapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0.0 : it->second;
}

std::string Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":";
    AppendDouble(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"bounds\":[";
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out << ",";
      AppendDouble(out, hist.bounds[i]);
    }
    out << "],\"counts\":[";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << hist.counts[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

Snapshot GlobalSnapshot() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Snapshot snapshot;
  for (const auto& [name, counter] : registry.counters) {
    snapshot.counters[name] = counter.Value();
  }
  for (const auto& [name, gauge] : registry.gauges) {
    snapshot.gauges[name] = gauge.Value();
  }
  for (const auto& [name, hist] : registry.histograms) {
    snapshot.histograms[name] = {hist.bounds(), hist.counts()};
  }
  return snapshot;
}

Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  Snapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const int64_t prior = it == before.counters.end() ? 0 : it->second;
    if (value != prior) delta.counters[name] = value - prior;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, hist] : after.histograms) {
    const auto it = before.histograms.find(name);
    HistogramSnapshot d = hist;
    if (it != before.histograms.end() &&
        it->second.counts.size() == d.counts.size()) {
      for (size_t i = 0; i < d.counts.size(); ++i) {
        d.counts[i] -= it->second.counts[i];
      }
    }
    const bool any = std::any_of(d.counts.begin(), d.counts.end(),
                                 [](int64_t c) { return c != 0; });
    if (any) delta.histograms[name] = std::move(d);
  }
  return delta;
}

}  // namespace x2vec::metrics
