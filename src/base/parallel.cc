#include "base/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

namespace x2vec {
namespace {

/// Target chunk count for the automatic grain. A pure function of n keeps
/// chunk boundaries — and therefore per-chunk RNG streams and reduction
/// orders — independent of the thread count (the determinism contract).
constexpr int64_t kAutoGrainChunks = 64;

/// > 0 while this thread is running ParallelFor chunks (at any depth).
thread_local int parallel_region_depth = 0;

std::mutex config_mu;
/// 0 = unresolved; resolved lazily from X2VEC_THREADS / hardware.
int configured_threads = 0;

/// Shared state of one ParallelFor invocation; lives on the caller's
/// stack, so the caller must not return before every helper task has run.
struct LoopState {
  std::atomic<int64_t> next_chunk{0};
  std::atomic<bool> cancelled{false};

  std::mutex failure_mu;
  int64_t failed_chunk = -1;  ///< Lowest failing chunk index seen so far.
  Status failure;
  std::exception_ptr exception;  ///< Set iff the failure was a throw.

  std::mutex done_mu;
  std::condition_variable done_cv;
  int pending_helpers = 0;
};

/// Claims and runs chunks until the range is exhausted or the loop is
/// cancelled. Runs on the caller and on every helper.
void RunChunks(int64_t n, int64_t grain, int64_t chunks,
               const std::function<Status(int64_t, int64_t)>& body,
               LoopState& state) {
  ++parallel_region_depth;
  while (!state.cancelled.load(std::memory_order_relaxed)) {
    const int64_t c = state.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) break;
    const int64_t lo = c * grain;
    const int64_t hi = std::min(n, lo + grain);
    Status status;
    std::exception_ptr exception;
    try {
      status = body(lo, hi);
    } catch (...) {
      exception = std::current_exception();
    }
    if (!status.ok() || exception) {
      std::lock_guard<std::mutex> lock(state.failure_mu);
      if (state.failed_chunk < 0 || c < state.failed_chunk) {
        state.failed_chunk = c;
        state.failure = std::move(status);
        state.exception = exception;
      }
      state.cancelled.store(true, std::memory_order_relaxed);
    }
  }
  --parallel_region_depth;
}

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(const char* env_value, int hardware) {
  if (env_value == nullptr || *env_value == '\0') return hardware;
  char* end = nullptr;
  const long parsed = std::strtol(env_value, &end, 10);
  if (end == env_value || *end != '\0' || parsed < 1) return hardware;
  // Cap against absurd settings; 1024 already far exceeds any sane pool.
  return static_cast<int>(std::min<long>(parsed, 1024));
}

int ThreadCount() {
  std::lock_guard<std::mutex> lock(config_mu);
  if (configured_threads == 0) {
    configured_threads =
        ResolveThreadCount(std::getenv("X2VEC_THREADS"), HardwareThreads());
  }
  return configured_threads;
}

void SetThreadCount(int threads) {
  std::lock_guard<std::mutex> lock(config_mu);
  configured_threads = threads >= 1 ? std::min(threads, 1024) : 0;
}

bool InParallelRegion() { return parallel_region_depth > 0; }

ThreadPool::ThreadPool(int workers) { EnsureWorkers(workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    X2VEC_CHECK(!shutdown_) << "Submit() on a shut-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::EnsureWorkers(int workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < workers) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Function-local static: joined cleanly at process exit (the pool is
  // idle by then — every ParallelFor waits out its helpers).
  static ThreadPool pool(std::max(0, ThreadCount() - 1));
  return pool;
}

Status ParallelFor(int64_t n, int64_t grain,
                   const std::function<Status(int64_t, int64_t)>& body) {
  if (n <= 0) return Status::Ok();
  if (grain <= 0) {
    grain = std::max<int64_t>(1, (n + kAutoGrainChunks - 1) / kAutoGrainChunks);
  }
  const int64_t chunks = (n + grain - 1) / grain;

  LoopState state;
  // Nested calls run inline on the current thread: pool workers waiting on
  // their own subtasks could otherwise occupy every worker and deadlock.
  const bool inline_only = InParallelRegion() || chunks == 1;
  const int helpers =
      inline_only ? 0
                  : static_cast<int>(
                        std::min<int64_t>(ThreadCount() - 1, chunks - 1));
  if (helpers > 0) {
    ThreadPool& pool = ThreadPool::Shared();
    pool.EnsureWorkers(helpers);
    state.pending_helpers = helpers;
    for (int i = 0; i < helpers; ++i) {
      pool.Submit([&state, n, grain, chunks, &body] {
        RunChunks(n, grain, chunks, body, state);
        std::lock_guard<std::mutex> lock(state.done_mu);
        if (--state.pending_helpers == 0) state.done_cv.notify_all();
      });
    }
  }
  RunChunks(n, grain, chunks, body, state);
  if (helpers > 0) {
    // state lives on this stack frame: every submitted task must have run
    // to completion before we return, even on cancellation.
    std::unique_lock<std::mutex> lock(state.done_mu);
    state.done_cv.wait(lock, [&state] { return state.pending_helpers == 0; });
  }
  if (state.exception) std::rethrow_exception(state.exception);
  if (state.failed_chunk >= 0) return state.failure;
  return Status::Ok();
}

}  // namespace x2vec
