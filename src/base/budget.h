#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>

#include "base/status.h"

namespace x2vec {

/// Cooperative execution budget for the library's super-polynomial and
/// long-running entry points (brute-force homomorphism counting, k-WL,
/// isomorphism search, embedding trainers). A Budget carries an optional
/// wall-clock deadline and an optional work-unit quota; guarded algorithms
/// call Spend() at each natural unit of work (a node expansion, a candidate
/// mapping, a training pair) and bail out with kResourceExhausted once the
/// budget is gone, instead of wedging the caller for minutes or hours.
///
/// A Budget is a single-use consumable: it accumulates spent work and
/// latches once exhausted. To run several operations under the same limits,
/// build a fresh Budget per operation (see BudgetSpec).
///
/// The probe is cheap by design: the unlimited case is one branch, the
/// work-quota case one add and compare, and the wall clock is consulted
/// only every kClockCheckStride work units.
class Budget {
 public:
  /// Work units between wall-clock reads; Spend() is called on hot paths.
  static constexpr int64_t kClockCheckStride = 1024;

  /// Unlimited budget (never exhausts).
  Budget() = default;

  static Budget Unlimited() { return Budget(); }

  /// Budget of `units` work units (0 is exhausted from the start).
  static Budget WorkUnits(int64_t units);

  /// Budget expiring `seconds` of wall-clock time from now.
  static Budget Deadline(double seconds);

  /// Both limits at once; whichever trips first exhausts the budget.
  static Budget DeadlineAndWorkUnits(double seconds, int64_t units);

  /// True iff this budget carries any limit at all.
  [[nodiscard]] bool limited() const { return work_limit_.has_value() || deadline_.has_value(); }

  /// Records `units` of cooperative work. Returns true while headroom
  /// remains; false once either limit is crossed. Exhaustion latches: all
  /// later calls return false.
  [[nodiscard]] bool Spend(int64_t units = 1) {
    if (!limited()) return true;
    return SpendSlow(units);
  }

  /// Probe without spending: true iff the budget is already gone. A zero
  /// work quota or an expired deadline reports exhausted before any work.
  [[nodiscard]] bool Exhausted() { return limited() && !SpendSlow(0); }

  /// Work units recorded so far.
  [[nodiscard]] int64_t work_spent() const { return work_spent_; }

  /// kResourceExhausted status naming the operation and the limit that
  /// tripped. Call only after Spend()/Exhausted() reported exhaustion.
  [[nodiscard]] Status ExhaustedError(std::string_view operation) const;

 private:
  bool SpendSlow(int64_t units);

  std::optional<int64_t> work_limit_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  int64_t work_spent_ = 0;
  int64_t next_clock_check_ = 0;  ///< work_spent_ at which to read the clock.
  bool exhausted_ = false;
  bool deadline_tripped_ = false;  ///< Which limit latched first.
};

/// Declarative, reusable description of budget limits. Budget itself is a
/// single-use consumable; a BudgetSpec mints a fresh one per operation —
/// the shape the method-suite runners use to give every method its own
/// allowance (core::RunMethodSuite).
struct BudgetSpec {
  std::optional<int64_t> work_units;      ///< Absent = unlimited work.
  std::optional<double> deadline_seconds; ///< Absent = no deadline.

  [[nodiscard]] Budget MakeBudget() const;
};

}  // namespace x2vec
