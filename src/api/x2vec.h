#pragma once

/// Umbrella header for the x2vec library: structural vector embeddings of
/// graphs and relational structures, after Grohe's PODS 2020 keynote
/// "word2vec, node2vec, graph2vec, X2vec". Include this to get the whole
/// public API; fine-grained headers are available per module.
///
/// Lives in api — the one module above every other — because an umbrella
/// necessarily includes the whole tree; core (layer 3) cannot, under the
/// layering the `layering` lint rule enforces.

#include "api/suite.h"             // IWYU pragma: export
#include "base/budget.h"           // IWYU pragma: export
#include "base/check.h"            // IWYU pragma: export
#include "base/parallel.h"         // IWYU pragma: export
#include "base/recovery.h"         // IWYU pragma: export
#include "base/rng.h"              // IWYU pragma: export
#include "base/status.h"           // IWYU pragma: export
#include "base/validation.h"       // IWYU pragma: export
#include "core/compare.h"          // IWYU pragma: export
#include "core/registry.h"         // IWYU pragma: export
#include "data/datasets.h"         // IWYU pragma: export
#include "data/io.h"               // IWYU pragma: export
#include "embed/corpus.h"          // IWYU pragma: export
#include "embed/factorization.h"   // IWYU pragma: export
#include "embed/graph2vec.h"       // IWYU pragma: export
#include "embed/node_embeddings.h" // IWYU pragma: export
#include "embed/sgns.h"            // IWYU pragma: export
#include "embed/stream.h"          // IWYU pragma: export
#include "embed/walks.h"           // IWYU pragma: export
#include "gnn/gcn.h"               // IWYU pragma: export
#include "gnn/higher_order.h"      // IWYU pragma: export
#include "gnn/layers.h"            // IWYU pragma: export
#include "graph/algorithms.h"      // IWYU pragma: export
#include "graph/csr.h"             // IWYU pragma: export
#include "graph/enumeration.h"     // IWYU pragma: export
#include "graph/generators.h"      // IWYU pragma: export
#include "graph/graph.h"           // IWYU pragma: export
#include "graph/graph6.h"          // IWYU pragma: export
#include "graph/isomorphism.h"     // IWYU pragma: export
#include "hom/brute_force.h"       // IWYU pragma: export
#include "hom/densities.h"         // IWYU pragma: export
#include "hom/embeddings.h"        // IWYU pragma: export
#include "hom/indistinguishability.h"  // IWYU pragma: export
#include "hom/path_cycle.h"        // IWYU pragma: export
#include "hom/tree_depth.h"        // IWYU pragma: export
#include "hom/tree_hom.h"          // IWYU pragma: export
#include "hom/treewidth.h"         // IWYU pragma: export
#include "kernel/graph_kernels.h"  // IWYU pragma: export
#include "kernel/node_kernels.h"   // IWYU pragma: export
#include "kernel/wl_kernel.h"      // IWYU pragma: export
#include "kg/datasets.h"           // IWYU pragma: export
#include "kg/knowledge_graph.h"    // IWYU pragma: export
#include "kg/rescal.h"             // IWYU pragma: export
#include "kg/transe.h"             // IWYU pragma: export
#include "linalg/charpoly.h"       // IWYU pragma: export
#include "linalg/eigen.h"          // IWYU pragma: export
#include "linalg/hungarian.h"      // IWYU pragma: export
#include "linalg/linear_system.h"  // IWYU pragma: export
#include "linalg/matrix.h"         // IWYU pragma: export
#include "linalg/rational.h"       // IWYU pragma: export
#include "logic/counting_logic.h"  // IWYU pragma: export
#include "ml/logistic.h"           // IWYU pragma: export
#include "ml/metrics.h"            // IWYU pragma: export
#include "ml/neighbors.h"          // IWYU pragma: export
#include "ml/pca.h"                // IWYU pragma: export
#include "ml/svm.h"                // IWYU pragma: export
#include "ml/validation.h"         // IWYU pragma: export
#include "relational/structure.h"  // IWYU pragma: export
#include "serve/engine.h"          // IWYU pragma: export
#include "serve/index.h"           // IWYU pragma: export
#include "sim/graph_distance.h"    // IWYU pragma: export
#include "sim/matrix_norms.h"      // IWYU pragma: export
#include "wl/cfi.h"                // IWYU pragma: export
#include "wl/color_refinement.h"   // IWYU pragma: export
#include "wl/fractional.h"         // IWYU pragma: export
#include "wl/kwl.h"                // IWYU pragma: export
#include "wl/unfolding_tree.h"     // IWYU pragma: export
#include "wl/weighted_wl.h"        // IWYU pragma: export
#include "wl/wl_hash.h"            // IWYU pragma: export
