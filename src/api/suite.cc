#include "api/suite.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "embed/graph2vec.h"
#include "embed/node_embeddings.h"
#include "gnn/graphsage.h"
#include "gnn/layers.h"
#include "hom/embeddings.h"
#include "kernel/graph_kernels.h"
#include "kernel/kwl_kernel.h"
#include "kernel/node_kernels.h"
#include "kernel/wl_kernel.h"
#include "ml/pca.h"

namespace x2vec::api {
namespace {

using core::GraphKernelMethod;
using core::NodeEmbeddingMethod;
using graph::Graph;
using linalg::Matrix;

Matrix GramFromRows(const Matrix& rows) {
  return rows * rows.Transposed();
}

// Wraps a polynomial-time kernel computation with coarse budget
// accounting: one work unit per input graph, charged up front. The
// trainer-backed methods below charge much finer units instead.
template <typename Compute>
StatusOr<Matrix> ChargedPerGraph(const std::vector<Graph>& graphs,
                                 Budget& budget, std::string_view operation,
                                 Compute&& compute) {
  if (!budget.Spend(static_cast<int64_t>(graphs.size()))) {
    return budget.ExhaustedError(operation);
  }
  return compute();
}

// Node-method analogue: one work unit per vertex, charged up front.
template <typename Compute>
StatusOr<Matrix> ChargedPerVertex(const Graph& g, Budget& budget,
                                  std::string_view operation,
                                  Compute&& compute) {
  if (!budget.Spend(g.NumVertices())) {
    return budget.ExhaustedError(operation);
  }
  return compute();
}

}  // namespace

std::vector<GraphKernelMethod> DefaultMethodSuite() {
  std::vector<GraphKernelMethod> suite;

  suite.push_back({"wl-subtree-t5",
                   [](const std::vector<Graph>& graphs, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "wl-subtree-t5",
                                            [&] {
                       return kernel::WlSubtreeKernelMatrix(graphs, 5);
                     });
                   }});
  suite.push_back({"wl2-folklore-t3",
                   [](const std::vector<Graph>& graphs, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "wl2-folklore-t3",
                                            [&] {
                       return kernel::TwoWlKernelMatrix(graphs, 3);
                     });
                   }});
  suite.push_back({"hom-20",
                   [](const std::vector<Graph>& graphs, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "hom-20", [&] {
                       return kernel::HomVectorKernelMatrix(
                           graphs, hom::DefaultPatternFamily(20));
                     });
                   }});
  suite.push_back({"graphlet-3",
                   [](const std::vector<Graph>& graphs, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "graphlet-3",
                                            [&] {
                       return kernel::GraphletKernelMatrix(graphs);
                     });
                   }});
  suite.push_back({"shortest-path",
                   [](const std::vector<Graph>& graphs, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "shortest-path",
                                            [&] {
                       return kernel::ShortestPathKernelMatrix(graphs);
                     });
                   }});
  suite.push_back({"random-walk",
                   [](const std::vector<Graph>& graphs, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "random-walk",
                                            [&] {
                       return kernel::RandomWalkKernelMatrix(graphs, 0.1, 6);
                     });
                   }});
  suite.push_back({"graph2vec",
                   [](const std::vector<Graph>& graphs, Rng& rng,
                      Budget& budget) -> StatusOr<Matrix> {
                     embed::Graph2VecOptions options;
                     options.wl_rounds = 3;
                     options.sgns.dimension = 32;
                     options.sgns.epochs = 8;
                     StatusOr<Matrix> rows = embed::Graph2VecEmbeddingBudgeted(
                         graphs, options, rng, budget);
                     if (!rows.ok()) return rows.status();
                     return GramFromRows(*rows);
                   }});
  suite.push_back({"gin-random",
                   [](const std::vector<Graph>& graphs, Rng& rng,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerGraph(graphs, budget, "gin-random",
                                            [&] {
                       const gnn::GinStack stack =
                           gnn::GinStack::Random(3, 16, 1.0, rng());
                       Matrix rows(static_cast<int>(graphs.size()), 16);
                       for (size_t i = 0; i < graphs.size(); ++i) {
                         rows.SetRow(static_cast<int>(i),
                                     stack.EmbedGraph(graphs[i]));
                       }
                       // Log-compress: sum readouts grow with graph size.
                       for (double& v : rows.mutable_data()) {
                         v = std::log1p(std::max(0.0, v));
                       }
                       return GramFromRows(rows);
                     });
                   }});
  return suite;
}

std::vector<NodeEmbeddingMethod> DefaultNodeMethodSuite() {
  std::vector<NodeEmbeddingMethod> suite;
  suite.push_back({"svd-adjacency",
                   [](const Graph& g, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "svd-adjacency", [&] {
                       return embed::SpectralAdjacencyEmbedding(
                           g, std::min(8, g.NumVertices()));
                     });
                   }});
  suite.push_back({"svd-expdist",
                   [](const Graph& g, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "svd-expdist", [&] {
                       return embed::SpectralSimilarityEmbedding(
                           g, std::min(8, g.NumVertices()), 2.0);
                     });
                   }});
  suite.push_back({"laplacian-eigenmap",
                   [](const Graph& g, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "laplacian-eigenmap",
                                             [&] {
                       return embed::LaplacianEigenmapEmbedding(
                           g, std::min(4, g.NumVertices() - 2));
                     });
                   }});
  suite.push_back({"isomap",
                   [](const Graph& g, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "isomap", [&] {
                       return embed::IsomapEmbedding(
                           g, std::min(4, g.NumVertices()));
                     });
                   }});
  suite.push_back({"deepwalk",
                   [](const Graph& g, Rng& rng,
                      Budget& budget) -> StatusOr<Matrix> {
                     embed::Node2VecOptions options;
                     options.sgns.dimension = 16;
                     options.sgns.epochs = 3;
                     return embed::DeepWalkEmbeddingBudgeted(g, options, rng,
                                                             budget);
                   }});
  suite.push_back({"node2vec-p1-q0.5",
                   [](const Graph& g, Rng& rng,
                      Budget& budget) -> StatusOr<Matrix> {
                     embed::Node2VecOptions options;
                     options.walks.p = 1.0;
                     options.walks.q = 0.5;
                     options.sgns.dimension = 16;
                     options.sgns.epochs = 3;
                     return embed::Node2VecEmbeddingBudgeted(g, options, rng,
                                                             budget);
                   }});
  suite.push_back({"rooted-hom-trees",
                   [](const Graph& g, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "rooted-hom-trees",
                                             [&] {
                       return hom::RootedHomNodeEmbedding(
                           g, hom::RootedTreesUpTo(5));
                     });
                   }});
  suite.push_back({"graphsage-random",
                   [](const Graph& g, Rng& rng,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "graphsage-random",
                                             [&] {
                       const gnn::GraphSage model =
                           gnn::GraphSage::Random(2, 16, 0.8, rng());
                       return model.EmbedNodes(g);
                     });
                   }});
  suite.push_back({"diffusion-kpca",
                   [](const Graph& g, Rng&,
                      Budget& budget) -> StatusOr<Matrix> {
                     return ChargedPerVertex(g, budget, "diffusion-kpca",
                                             [&] {
                       // Node kernel (Section 2.4) turned into coordinates
                       // via kernel PCA — kernels and embeddings are two
                       // views of the same object.
                       return ml::KernelPca(
                           kernel::DiffusionKernel(g, 0.5),
                           std::min(8, g.NumVertices()));
                     });
                   }});
  return suite;
}

}  // namespace x2vec::api
