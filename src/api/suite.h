#pragma once

#include <vector>

#include "core/registry.h"

namespace x2vec::api {

/// The default method suites, assembled here — above every method module —
/// so core (the suite *framework*: registry structs, RunMethodSuite,
/// outcome reporting) never depends upward on embed/kernel/gnn/ml/hom.
/// This is the dependency inversion the `layering` lint rule pins: core is
/// layer 3, the method modules are layer 4, and api sits on top wiring
/// them together.

/// The default whole-graph method suite used by the classification
/// benchmark (Section 4's hom vectors, Section 3.5's WL kernel at t = 5,
/// the Section 2.4 kernels, GRAPH2VEC, and a random-weight GIN readout).
std::vector<core::GraphKernelMethod> DefaultMethodSuite();

/// Spectral (Fig. 2a/2b), DeepWalk, node2vec and rooted-hom-vector node
/// embedders with library-default hyperparameters.
std::vector<core::NodeEmbeddingMethod> DefaultNodeMethodSuite();

}  // namespace x2vec::api
