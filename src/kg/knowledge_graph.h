#pragma once

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "base/check.h"

namespace x2vec::kg {

/// A (head, relation, tail) fact.
struct Triple {
  int head = 0;
  int relation = 0;
  int tail = 0;

  auto operator<=>(const Triple&) const = default;
};

/// In-memory knowledge graph: entity/relation name tables plus a triple
/// store with membership queries (Section 2.3's data model — many named
/// binary relations over labelled entities).
class KnowledgeGraph {
 public:
  int AddEntity(const std::string& name);
  int AddRelation(const std::string& name);
  /// Adds the fact; duplicate facts are ignored.
  void AddTriple(int head, int relation, int tail);
  /// Convenience: adds by names, creating ids as needed.
  void AddFact(const std::string& head, const std::string& relation,
               const std::string& tail);

  int NumEntities() const { return static_cast<int>(entities_.size()); }
  int NumRelations() const { return static_cast<int>(relations_.size()); }
  const std::vector<Triple>& Triples() const { return triples_; }
  bool HasTriple(int head, int relation, int tail) const {
    return triple_set_.count({head, relation, tail}) > 0;
  }

  /// Entity id by name (-1 when absent).
  int EntityId(const std::string& name) const;
  int RelationId(const std::string& name) const;
  const std::string& EntityName(int id) const {
    X2VEC_CHECK(id >= 0 && id < NumEntities());
    return entities_[id];
  }
  const std::string& RelationName(int id) const {
    X2VEC_CHECK(id >= 0 && id < NumRelations());
    return relations_[id];
  }

 private:
  std::vector<std::string> entities_;
  std::vector<std::string> relations_;
  std::vector<Triple> triples_;
  std::set<Triple> triple_set_;
};

}  // namespace x2vec::kg
