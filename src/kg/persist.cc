#include "kg/persist.h"

#include <utility>

namespace x2vec::kg {

using embed::CheckpointData;
using embed::CheckpointKind;
using embed::CheckpointSection;
using embed::DecodeCheckpoint;
using embed::EncodeCheckpoint;
using embed::PayloadReader;
using embed::PayloadWriter;

void HashKnowledgeGraph(embed::Fnv1a& hasher, const KnowledgeGraph& kg) {
  hasher.UpdateU64(static_cast<uint64_t>(kg.NumEntities()));
  hasher.UpdateU64(static_cast<uint64_t>(kg.NumRelations()));
  hasher.UpdateU64(kg.Triples().size());
  for (const Triple& triple : kg.Triples()) {
    hasher.UpdateU64(static_cast<uint64_t>(triple.head));
    hasher.UpdateU64(static_cast<uint64_t>(triple.relation));
    hasher.UpdateU64(static_cast<uint64_t>(triple.tail));
  }
}

namespace {

Status SaveArtifact(Fs& fs, const std::string& path, CheckpointKind kind,
                    CheckpointData data) {
  data.kind = kind;
  return fs.WriteFileAtomic(path, EncodeCheckpoint(data));
}

StatusOr<CheckpointData> LoadArtifact(Fs& fs, const std::string& path,
                                      CheckpointKind kind) {
  StatusOr<std::string> bytes = fs.ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  StatusOr<CheckpointData> decoded = DecodeCheckpoint(*bytes);
  if (!decoded.ok()) {
    return Status::CorruptedData(path + ": " + decoded.status().message());
  }
  if (decoded->kind != kind) {
    return Status::CorruptedData(
        path + ": wrong artifact kind " +
        std::to_string(static_cast<uint32_t>(decoded->kind)) + " (expected " +
        std::to_string(static_cast<uint32_t>(kind)) + ")");
  }
  return decoded;
}

}  // namespace

Status SaveTransEModel(Fs& fs, const std::string& path,
                       const TransEModel& model) {
  PayloadWriter writer;
  writer.PutMatrix(model.entities);
  writer.PutMatrix(model.relations);
  CheckpointData data;
  data.sections.push_back({"model", writer.Take()});
  return SaveArtifact(fs, path, CheckpointKind::kTransEModelArtifact,
                      std::move(data));
}

StatusOr<TransEModel> LoadTransEModel(Fs& fs, const std::string& path) {
  StatusOr<CheckpointData> data =
      LoadArtifact(fs, path, CheckpointKind::kTransEModelArtifact);
  if (!data.ok()) return data.status();
  const CheckpointSection* section = data->Find("model");
  if (section == nullptr) {
    return Status::CorruptedData(path + ": missing 'model' section");
  }
  PayloadReader reader(section->payload);
  TransEModel model;
  model.entities = reader.GetMatrix();
  model.relations = reader.GetMatrix();
  reader.ExpectEnd();
  if (!reader.status().ok()) {
    return Status::CorruptedData(path + ": " + reader.status().message());
  }
  return model;
}

Status SaveRescalModel(Fs& fs, const std::string& path,
                       const RescalModel& model) {
  PayloadWriter writer;
  writer.PutMatrix(model.entities);
  writer.PutU32(static_cast<uint32_t>(model.relations.size()));
  for (const linalg::Matrix& relation : model.relations) {
    writer.PutMatrix(relation);
  }
  CheckpointData data;
  data.sections.push_back({"model", writer.Take()});
  return SaveArtifact(fs, path, CheckpointKind::kRescalModelArtifact,
                      std::move(data));
}

StatusOr<RescalModel> LoadRescalModel(Fs& fs, const std::string& path) {
  StatusOr<CheckpointData> data =
      LoadArtifact(fs, path, CheckpointKind::kRescalModelArtifact);
  if (!data.ok()) return data.status();
  const CheckpointSection* section = data->Find("model");
  if (section == nullptr) {
    return Status::CorruptedData(path + ": missing 'model' section");
  }
  PayloadReader reader(section->payload);
  RescalModel model;
  model.entities = reader.GetMatrix();
  const uint32_t relation_count = reader.GetU32();
  for (uint32_t r = 0; r < relation_count && reader.status().ok(); ++r) {
    model.relations.push_back(reader.GetMatrix());
  }
  reader.ExpectEnd();
  if (!reader.status().ok()) {
    return Status::CorruptedData(path + ": " + reader.status().message());
  }
  return model;
}

}  // namespace x2vec::kg
