#include "kg/transe.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "base/metrics.h"
#include "base/validation.h"
#include "kg/persist.h"
#include "linalg/health.h"

namespace x2vec::kg {
namespace {

constexpr std::string_view kOperation = "TransE training";

using embed::CheckpointData;
using embed::CheckpointKind;
using embed::CheckpointOptions;
using embed::CheckpointSection;
using embed::PayloadReader;
using embed::PayloadWriter;

uint64_t TransEFingerprint(const KnowledgeGraph& kg,
                           const TransEOptions& options) {
  embed::Fnv1a hasher;
  hasher.UpdateU64(static_cast<uint64_t>(CheckpointKind::kTransE));
  hasher.UpdateU64(static_cast<uint64_t>(options.dimension));
  hasher.UpdateU64(static_cast<uint64_t>(options.epochs));
  hasher.UpdateDouble(options.learning_rate);
  hasher.UpdateDouble(options.margin);
  hasher.UpdateU64(static_cast<uint64_t>(options.recovery.max_retries));
  hasher.UpdateDouble(options.recovery.lr_backoff);
  hasher.UpdateDouble(options.recovery.clip_norm);
  hasher.UpdateDouble(options.recovery.clip_backoff);
  hasher.UpdateDouble(options.recovery.max_abs);
  HashKnowledgeGraph(hasher, kg);
  return hasher.digest();
}

CheckpointData EncodeTransEState(uint64_t fingerprint,
                                 const TransEModel& model, int next_epoch,
                                 double lr_scale, double clip, int retries,
                                 const std::string& rng_state) {
  CheckpointData data;
  data.kind = CheckpointKind::kTransE;
  data.fingerprint = fingerprint;
  PayloadWriter model_writer;
  model_writer.PutMatrix(model.entities);
  model_writer.PutMatrix(model.relations);
  data.sections.push_back({"model", model_writer.Take()});
  PayloadWriter trainer_writer;
  trainer_writer.PutI64(next_epoch);
  trainer_writer.PutDouble(lr_scale);
  trainer_writer.PutDouble(clip);
  trainer_writer.PutI64(retries);
  trainer_writer.PutString(rng_state);
  data.sections.push_back({"trainer", trainer_writer.Take()});
  return data;
}

Status DecodeTransEState(const CheckpointData& data, TransEModel& model,
                         int& next_epoch, double& lr_scale, double& clip,
                         int& retries, std::string& rng_state) {
  const CheckpointSection* model_section = data.Find("model");
  const CheckpointSection* trainer_section = data.Find("trainer");
  if (model_section == nullptr || trainer_section == nullptr) {
    return Status::CorruptedData(
        "TransE checkpoint is missing its 'model' or 'trainer' section");
  }
  PayloadReader model_reader(model_section->payload);
  model.entities = model_reader.GetMatrix();
  model.relations = model_reader.GetMatrix();
  model_reader.ExpectEnd();
  if (!model_reader.status().ok()) return model_reader.status();
  PayloadReader trainer_reader(trainer_section->payload);
  next_epoch = static_cast<int>(trainer_reader.GetI64());
  lr_scale = trainer_reader.GetDouble();
  clip = trainer_reader.GetDouble();
  retries = static_cast<int>(trainer_reader.GetI64());
  rng_state = trainer_reader.GetString();
  trainer_reader.ExpectEnd();
  return trainer_reader.status();
}

}  // namespace

double TransEModel::Score(int head, int relation, int tail) const {
  const std::span<const double> h = entities.ConstRowSpan(head);
  const std::span<const double> r = relations.ConstRowSpan(relation);
  const std::span<const double> t = entities.ConstRowSpan(tail);
  double total = 0.0;
  for (size_t d = 0; d < h.size(); ++d) {
    const double diff = h[d] + r[d] - t[d];
    total += diff * diff;
  }
  return std::sqrt(total);
}

int TransEModel::TailRank(const KnowledgeGraph& kg,
                          const Triple& triple) const {
  const double true_score = Score(triple.head, triple.relation, triple.tail);
  int rank = 1;
  for (int candidate = 0; candidate < kg.NumEntities(); ++candidate) {
    if (candidate == triple.tail) continue;
    // Filtered protocol: other true tails do not count against the rank.
    if (kg.HasTriple(triple.head, triple.relation, candidate)) continue;
    if (Score(triple.head, triple.relation, candidate) < true_score) ++rank;
  }
  return rank;
}

Status ValidateTransEOptions(const TransEOptions& options) {
  return ValidateOptions({
      {"dimension", static_cast<double>(options.dimension),
       OptionCheck::Rule::kPositive},
      // Zero epochs is a valid "untrained baseline" request.
      {"epochs", static_cast<double>(options.epochs),
       OptionCheck::Rule::kNonNegative},
      {"learning_rate", options.learning_rate,
       OptionCheck::Rule::kPositiveFinite},
      {"margin", options.margin, OptionCheck::Rule::kNonNegative},
  });
}

TransEModel TrainTransE(const KnowledgeGraph& kg, const TransEOptions& options,
                        Rng& rng) {
  Budget unlimited;
  return *TrainTransEBudgeted(kg, options, rng, unlimited);
}

StatusOr<TransEModel> TrainTransEBudgeted(const KnowledgeGraph& kg,
                                          const TransEOptions& options,
                                          Rng& rng, Budget& budget) {
  if (Status status = ValidateTransEOptions(options); !status.ok()) {
    return status;
  }
  if (kg.NumEntities() < 2) {
    return Status::InvalidArgument(
        "TransE training needs at least two entities");
  }
  if (kg.NumRelations() < 1) {
    return Status::InvalidArgument(
        "TransE training needs at least one relation");
  }
  if (kg.Triples().empty()) {
    return Status::InvalidArgument(
        "TransE training needs at least one triple");
  }
  if (Status status = embed::ValidateCheckpointOptions(options.checkpoint);
      !status.ok()) {
    return status;
  }
  if (budget.Exhausted()) return budget.ExhaustedError(kOperation);

  const CheckpointOptions& ckpt = options.checkpoint;
  const uint64_t fingerprint =
      ckpt.enabled() ? TransEFingerprint(kg, options) : 0;

  TransEModel model;
  const double init = 6.0 / std::sqrt(options.dimension);
  const RecoveryPolicy& recovery = options.recovery;
  double lr_scale = 1.0;  // Backed off on each numeric recovery.
  double clip = recovery.clip_norm;
  int retries = 0;
  int start_epoch = 0;

  bool resumed = false;
  if (ckpt.enabled()) {
    StatusOr<std::optional<CheckpointData>> loaded =
        embed::LoadLatestCheckpoint(ckpt, CheckpointKind::kTransE,
                                    fingerprint);
    if (!loaded.ok()) return loaded.status();
    if (loaded->has_value()) {
      std::string rng_state;
      if (Status status =
              DecodeTransEState(**loaded, model, start_epoch, lr_scale, clip,
                                retries, rng_state);
          !status.ok()) {
        return status;
      }
      if (model.entities.rows() != kg.NumEntities() ||
          model.entities.cols() != options.dimension ||
          model.relations.rows() != kg.NumRelations() ||
          model.relations.cols() != options.dimension) {
        return Status::CorruptedData(
            "TransE checkpoint model shape does not match this run's");
      }
      if (Status status = rng.LoadEngineState(rng_state); !status.ok()) {
        return status;
      }
      resumed = true;
      X2VEC_METRIC_COUNT("checkpoint.resumes", 1);
    }
  }
  if (!resumed) {
    model.entities = linalg::Matrix(kg.NumEntities(), options.dimension);
    model.relations = linalg::Matrix(kg.NumRelations(), options.dimension);
    for (double& v : model.entities.mutable_data()) {
      v = UniformReal(rng, -init, init);
    }
    for (double& v : model.relations.mutable_data()) {
      v = UniformReal(rng, -init, init);
    }
  }

  auto normalize_entities = [&model]() {
    for (int e = 0; e < model.entities.rows(); ++e) {
      const std::span<double> row = model.entities.RowSpan(e);
      double norm = 0.0;
      for (const double v : row) norm += v * v;
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (double& v : row) v /= norm;
      }
    }
  };

  const int dim = options.dimension;
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    normalize_entities();
    double epoch_loss = 0.0;
    // The translation step direction (h + t - r)/score has unit L2 norm, so
    // capping the step scale at `clip` clips the per-update step norm. With
    // the default threshold and a sane learning rate this is the plain
    // learning rate, bit for bit.
    const double step_scale =
        std::min(options.learning_rate * lr_scale, clip);
    for (const Triple& triple : kg.Triples()) {
      if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
      // Corrupt head or tail uniformly; resample until the corruption is
      // actually false.
      Triple corrupted = triple;
      for (int attempt = 0; attempt < 50; ++attempt) {
        corrupted = triple;
        if (Coin(rng, 0.5)) {
          corrupted.head =
              static_cast<int>(UniformInt(rng, 0, kg.NumEntities() - 1));
        } else {
          corrupted.tail =
              static_cast<int>(UniformInt(rng, 0, kg.NumEntities() - 1));
        }
        if (!kg.HasTriple(corrupted.head, corrupted.relation,
                          corrupted.tail)) {
          break;
        }
      }
      const double positive = model.Score(triple.head, triple.relation,
                                          triple.tail);
      const double negative = model.Score(corrupted.head, corrupted.relation,
                                          corrupted.tail);
      // Track the positive energy before the violation test: a diverged
      // model scores Inf/NaN everywhere and would otherwise skip every
      // update (and so every loss term) while staying silently wedged.
      epoch_loss += positive;
      if (positive + options.margin <= negative) continue;  // No violation.

      // Gradient of ||h + t - r|| w.r.t. each vector (L2 distance), applied
      // to push the positive together and the negative apart.
      // Row views may alias when head == tail (a reflexive triple); the
      // per-dimension read-then-update order below matches the historical
      // element-indexed loop either way.
      auto apply = [&](const Triple& t, double sign, double score) {
        if (score < 1e-9) return;
        const std::span<double> head = model.entities.RowSpan(t.head);
        const std::span<double> rel = model.relations.RowSpan(t.relation);
        const std::span<double> tail = model.entities.RowSpan(t.tail);
        for (int d = 0; d < dim; ++d) {
          const double diff = (head[d] + rel[d] - tail[d]) / score;
          const double step = sign * step_scale * diff;
          head[d] -= step;
          rel[d] -= step;
          tail[d] += step;
        }
      };
      apply(triple, +1.0, positive);
      apply(corrupted, -1.0, negative);
    }

    // Per-epoch numeric health check with bounded self-healing.
    const bool healthy =
        std::isfinite(epoch_loss) &&
        linalg::MatrixHealthy(model.entities, recovery.max_abs) &&
        linalg::MatrixHealthy(model.relations, recovery.max_abs);
    if (!healthy) {
      if (++retries > recovery.max_retries) {
        return Status::Internal(
            "TransE training diverged (non-finite or runaway parameters) and "
            "exhausted " +
            std::to_string(recovery.max_retries) + " recovery retries");
      }
      lr_scale *= recovery.lr_backoff;
      clip *= recovery.clip_backoff;
      linalg::ReseedUnhealthyRows(model.entities, init, recovery.max_abs, rng);
      linalg::ReseedUnhealthyRows(model.relations, init, recovery.max_abs,
                                  rng);
      --epoch;  // Retry the failed epoch with the gentler settings.
      continue;
    }

    // Healthy epoch barrier: persist the resume state. Saving the raw
    // (un-normalised) entities is correct because every epoch — resumed or
    // not — renormalises on entry, and the final normalize below runs in
    // both the resumed and uninterrupted runs.
    if (ckpt.enabled() && (epoch + 1) % ckpt.every_n_epochs == 0) {
      if (Status status = embed::SaveCheckpoint(
              ckpt, epoch + 1,
              EncodeTransEState(fingerprint, model, epoch + 1, lr_scale, clip,
                                retries, rng.SaveEngineState()));
          !status.ok()) {
        return status;
      }
    }
  }
  normalize_entities();
  return model;
}

std::vector<int> TailRanks(const TransEModel& model, const KnowledgeGraph& kg,
                           const std::vector<Triple>& test) {
  std::vector<int> ranks;
  ranks.reserve(test.size());
  for (const Triple& triple : test) {
    ranks.push_back(model.TailRank(kg, triple));
  }
  return ranks;
}

}  // namespace x2vec::kg
