#include "kg/transe.h"

#include <algorithm>
#include <cmath>

namespace x2vec::kg {

double TransEModel::Score(int head, int relation, int tail) const {
  double total = 0.0;
  for (int d = 0; d < entities.cols(); ++d) {
    const double diff =
        entities(head, d) + relations(relation, d) - entities(tail, d);
    total += diff * diff;
  }
  return std::sqrt(total);
}

int TransEModel::TailRank(const KnowledgeGraph& kg,
                          const Triple& triple) const {
  const double true_score = Score(triple.head, triple.relation, triple.tail);
  int rank = 1;
  for (int candidate = 0; candidate < kg.NumEntities(); ++candidate) {
    if (candidate == triple.tail) continue;
    // Filtered protocol: other true tails do not count against the rank.
    if (kg.HasTriple(triple.head, triple.relation, candidate)) continue;
    if (Score(triple.head, triple.relation, candidate) < true_score) ++rank;
  }
  return rank;
}

TransEModel TrainTransE(const KnowledgeGraph& kg, const TransEOptions& options,
                        Rng& rng) {
  X2VEC_CHECK_GT(kg.NumEntities(), 1);
  X2VEC_CHECK_GT(kg.NumRelations(), 0);
  X2VEC_CHECK(!kg.Triples().empty());

  TransEModel model;
  const double init = 6.0 / std::sqrt(options.dimension);
  model.entities = linalg::Matrix(kg.NumEntities(), options.dimension);
  model.relations = linalg::Matrix(kg.NumRelations(), options.dimension);
  for (double& v : model.entities.mutable_data()) {
    v = UniformReal(rng, -init, init);
  }
  for (double& v : model.relations.mutable_data()) {
    v = UniformReal(rng, -init, init);
  }

  auto normalize_entities = [&model]() {
    for (int e = 0; e < model.entities.rows(); ++e) {
      double norm = 0.0;
      for (int d = 0; d < model.entities.cols(); ++d) {
        norm += model.entities(e, d) * model.entities(e, d);
      }
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (int d = 0; d < model.entities.cols(); ++d) {
          model.entities(e, d) /= norm;
        }
      }
    }
  };

  const int dim = options.dimension;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    normalize_entities();
    for (const Triple& triple : kg.Triples()) {
      // Corrupt head or tail uniformly; resample until the corruption is
      // actually false.
      Triple corrupted = triple;
      for (int attempt = 0; attempt < 50; ++attempt) {
        corrupted = triple;
        if (Coin(rng, 0.5)) {
          corrupted.head =
              static_cast<int>(UniformInt(rng, 0, kg.NumEntities() - 1));
        } else {
          corrupted.tail =
              static_cast<int>(UniformInt(rng, 0, kg.NumEntities() - 1));
        }
        if (!kg.HasTriple(corrupted.head, corrupted.relation,
                          corrupted.tail)) {
          break;
        }
      }
      const double positive = model.Score(triple.head, triple.relation,
                                          triple.tail);
      const double negative = model.Score(corrupted.head, corrupted.relation,
                                          corrupted.tail);
      if (positive + options.margin <= negative) continue;  // No violation.

      // Gradient of ||h + t - r|| w.r.t. each vector (L2 distance), applied
      // to push the positive together and the negative apart.
      auto apply = [&](const Triple& t, double sign, double score) {
        if (score < 1e-9) return;
        for (int d = 0; d < dim; ++d) {
          const double diff = (model.entities(t.head, d) +
                               model.relations(t.relation, d) -
                               model.entities(t.tail, d)) /
                              score;
          const double step = sign * options.learning_rate * diff;
          model.entities(t.head, d) -= step;
          model.relations(t.relation, d) -= step;
          model.entities(t.tail, d) += step;
        }
      };
      apply(triple, +1.0, positive);
      apply(corrupted, -1.0, negative);
    }
  }
  normalize_entities();
  return model;
}

std::vector<int> TailRanks(const TransEModel& model, const KnowledgeGraph& kg,
                           const std::vector<Triple>& test) {
  std::vector<int> ranks;
  ranks.reserve(test.size());
  for (const Triple& triple : test) {
    ranks.push_back(model.TailRank(kg, triple));
  }
  return ranks;
}

}  // namespace x2vec::kg
