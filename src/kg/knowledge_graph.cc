#include "kg/knowledge_graph.h"

#include <algorithm>

namespace x2vec::kg {

int KnowledgeGraph::AddEntity(const std::string& name) {
  const int existing = EntityId(name);
  if (existing != -1) return existing;
  entities_.push_back(name);
  return NumEntities() - 1;
}

int KnowledgeGraph::AddRelation(const std::string& name) {
  const int existing = RelationId(name);
  if (existing != -1) return existing;
  relations_.push_back(name);
  return NumRelations() - 1;
}

void KnowledgeGraph::AddTriple(int head, int relation, int tail) {
  X2VEC_CHECK(head >= 0 && head < NumEntities());
  X2VEC_CHECK(tail >= 0 && tail < NumEntities());
  X2VEC_CHECK(relation >= 0 && relation < NumRelations());
  const Triple triple{head, relation, tail};
  if (triple_set_.insert(triple).second) {
    triples_.push_back(triple);
  }
}

void KnowledgeGraph::AddFact(const std::string& head,
                             const std::string& relation,
                             const std::string& tail) {
  AddTriple(AddEntity(head), AddRelation(relation), AddEntity(tail));
}

int KnowledgeGraph::EntityId(const std::string& name) const {
  const auto it = std::find(entities_.begin(), entities_.end(), name);
  return it == entities_.end()
             ? -1
             : static_cast<int>(it - entities_.begin());
}

int KnowledgeGraph::RelationId(const std::string& name) const {
  const auto it = std::find(relations_.begin(), relations_.end(), name);
  return it == relations_.end()
             ? -1
             : static_cast<int>(it - relations_.begin());
}

}  // namespace x2vec::kg
