#pragma once

#include <vector>

#include "base/budget.h"
#include "base/recovery.h"
#include "base/rng.h"
#include "base/status.h"
#include "embed/checkpoint.h"
#include "kg/knowledge_graph.h"
#include "linalg/matrix.h"

namespace x2vec::kg {

/// RESCAL (Section 2.3 [Nickel et al.]): one bilinear form B_R per relation
/// with scores x_h^T B_R x_t ≈ [ (h,R,t) holds ]. Trained here by gradient
/// descent on the squared reconstruction error
/// sum_R || X B_R X^T - A_R ||_F^2 (the multi-relational matrix
/// factorisation view the paper describes).
struct RescalOptions {
  int dimension = 16;
  int epochs = 300;
  double learning_rate = 0.05;
  double l2 = 1e-3;
  /// Numeric-health guardrails: NaN/Inf detection with LR-backoff retries.
  /// The defaults never engage on a healthy run.
  RecoveryPolicy recovery;
  /// Opt-in crash-safe persistence (see embed/checkpoint.h): snapshots at
  /// epoch barriers, resume from the newest intact checkpoint, final model
  /// bit-identical to an uninterrupted run.
  embed::CheckpointOptions checkpoint;
};

struct RescalModel {
  linalg::Matrix entities;                ///< n x d embedding matrix X.
  std::vector<linalg::Matrix> relations;  ///< d x d matrices B_R.

  /// Bilinear plausibility score x_h^T B_R x_t.
  double Score(int head, int relation, int tail) const;

  /// Total squared reconstruction error over all relations.
  double ReconstructionError(const KnowledgeGraph& kg) const;
};

/// kInvalidArgument naming the first bad field (non-positive dimension,
/// negative epochs, non-finite or non-positive learning rate, negative
/// l2), OK otherwise. Zero epochs requests the untrained baseline.
[[nodiscard]] Status ValidateRescalOptions(const RescalOptions& options);

RescalModel TrainRescal(const KnowledgeGraph& kg, const RescalOptions& options,
                        Rng& rng);

/// Budgeted, self-healing variant. One work unit = one relation processed
/// in one full-batch epoch. After every epoch the factor matrices and the
/// accumulated residual Frobenius loss are checked for NaN/Inf and runaway
/// magnitudes; on failure the trainer backs off the learning rate, reseeds
/// the offending rows and retries the epoch, giving up with kInternal after
/// `options.recovery.max_retries` cumulative retries. Returns
/// kResourceExhausted when the budget runs out and kInvalidArgument for bad
/// options or a degenerate knowledge graph. With an unlimited budget and a
/// healthy run the result is bit-identical to TrainRescal (which is a thin
/// wrapper over this).
[[nodiscard]] StatusOr<RescalModel> TrainRescalBudgeted(const KnowledgeGraph& kg,
                                          const RescalOptions& options,
                                          Rng& rng, Budget& budget);

}  // namespace x2vec::kg
