#ifndef X2VEC_KG_RESCAL_H_
#define X2VEC_KG_RESCAL_H_

#include <vector>

#include "base/rng.h"
#include "kg/knowledge_graph.h"
#include "linalg/matrix.h"

namespace x2vec::kg {

/// RESCAL (Section 2.3 [Nickel et al.]): one bilinear form B_R per relation
/// with scores x_h^T B_R x_t ≈ [ (h,R,t) holds ]. Trained here by gradient
/// descent on the squared reconstruction error
/// sum_R || X B_R X^T - A_R ||_F^2 (the multi-relational matrix
/// factorisation view the paper describes).
struct RescalOptions {
  int dimension = 16;
  int epochs = 300;
  double learning_rate = 0.05;
  double l2 = 1e-3;
};

struct RescalModel {
  linalg::Matrix entities;                ///< n x d embedding matrix X.
  std::vector<linalg::Matrix> relations;  ///< d x d matrices B_R.

  /// Bilinear plausibility score x_h^T B_R x_t.
  double Score(int head, int relation, int tail) const;

  /// Total squared reconstruction error over all relations.
  double ReconstructionError(const KnowledgeGraph& kg) const;
};

RescalModel TrainRescal(const KnowledgeGraph& kg, const RescalOptions& options,
                        Rng& rng);

}  // namespace x2vec::kg

#endif  // X2VEC_KG_RESCAL_H_
