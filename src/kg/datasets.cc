#include "kg/datasets.h"

#include <string>
#include <utility>
#include <vector>

#include "base/check.h"

namespace x2vec::kg {

KnowledgeGraph CountriesKnowledgeGraph(int num_countries, Rng& rng) {
  X2VEC_CHECK_GE(num_countries, 4);
  KnowledgeGraph kg;
  // The paper's own example entities come first.
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"France", "Paris"},
      {"Chile", "Santiago"},
      {"Germany", "Berlin"},
      {"Japan", "Tokyo"},
  };
  for (int i = static_cast<int>(pairs.size()); i < num_countries; ++i) {
    pairs.emplace_back("country" + std::to_string(i),
                       "capital" + std::to_string(i));
  }
  const std::vector<std::string> continents = {"Europe", "SouthAmerica",
                                               "Asia", "Africa"};
  const std::vector<std::string> languages = {"lang0", "lang1", "lang2"};
  for (int i = 0; i < num_countries; ++i) {
    const auto& [country, capital] = pairs[i];
    kg.AddFact(capital, "capital-of", country);
    kg.AddFact(capital, "city-in", country);
    const std::string continent =
        i == 0   ? "Europe"
        : i == 1 ? "SouthAmerica"
        : i == 2 ? "Europe"
        : i == 3 ? "Asia"
                 : continents[UniformInt(rng, 0, continents.size() - 1)];
    kg.AddFact(country, "in-continent", continent);
    kg.AddFact(country, "speaks",
               languages[UniformInt(rng, 0, languages.size() - 1)]);
  }
  return kg;
}

}  // namespace x2vec::kg
