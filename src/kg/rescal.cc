#include "kg/rescal.h"

#include <cmath>

#include "base/metrics.h"
#include "base/validation.h"
#include "kg/persist.h"
#include "linalg/health.h"

namespace x2vec::kg {
namespace {

constexpr std::string_view kOperation = "RESCAL training";

using embed::CheckpointData;
using embed::CheckpointKind;
using embed::CheckpointOptions;
using embed::CheckpointSection;
using embed::PayloadReader;
using embed::PayloadWriter;

uint64_t RescalFingerprint(const KnowledgeGraph& kg,
                           const RescalOptions& options) {
  embed::Fnv1a hasher;
  hasher.UpdateU64(static_cast<uint64_t>(CheckpointKind::kRescal));
  hasher.UpdateU64(static_cast<uint64_t>(options.dimension));
  hasher.UpdateU64(static_cast<uint64_t>(options.epochs));
  hasher.UpdateDouble(options.learning_rate);
  hasher.UpdateDouble(options.l2);
  hasher.UpdateU64(static_cast<uint64_t>(options.recovery.max_retries));
  hasher.UpdateDouble(options.recovery.lr_backoff);
  hasher.UpdateDouble(options.recovery.max_abs);
  HashKnowledgeGraph(hasher, kg);
  return hasher.digest();
}

CheckpointData EncodeRescalState(uint64_t fingerprint,
                                 const RescalModel& model, int next_epoch,
                                 double lr_scale, int retries,
                                 const std::string& rng_state) {
  CheckpointData data;
  data.kind = CheckpointKind::kRescal;
  data.fingerprint = fingerprint;
  PayloadWriter model_writer;
  model_writer.PutMatrix(model.entities);
  model_writer.PutU32(static_cast<uint32_t>(model.relations.size()));
  for (const linalg::Matrix& relation : model.relations) {
    model_writer.PutMatrix(relation);
  }
  data.sections.push_back({"model", model_writer.Take()});
  PayloadWriter trainer_writer;
  trainer_writer.PutI64(next_epoch);
  trainer_writer.PutDouble(lr_scale);
  trainer_writer.PutI64(retries);
  trainer_writer.PutString(rng_state);
  data.sections.push_back({"trainer", trainer_writer.Take()});
  return data;
}

Status DecodeRescalState(const CheckpointData& data, RescalModel& model,
                         int& next_epoch, double& lr_scale, int& retries,
                         std::string& rng_state) {
  const CheckpointSection* model_section = data.Find("model");
  const CheckpointSection* trainer_section = data.Find("trainer");
  if (model_section == nullptr || trainer_section == nullptr) {
    return Status::CorruptedData(
        "RESCAL checkpoint is missing its 'model' or 'trainer' section");
  }
  PayloadReader model_reader(model_section->payload);
  model.entities = model_reader.GetMatrix();
  const uint32_t relation_count = model_reader.GetU32();
  model.relations.clear();
  for (uint32_t r = 0; r < relation_count && model_reader.status().ok(); ++r) {
    model.relations.push_back(model_reader.GetMatrix());
  }
  model_reader.ExpectEnd();
  if (!model_reader.status().ok()) return model_reader.status();
  PayloadReader trainer_reader(trainer_section->payload);
  next_epoch = static_cast<int>(trainer_reader.GetI64());
  lr_scale = trainer_reader.GetDouble();
  retries = static_cast<int>(trainer_reader.GetI64());
  rng_state = trainer_reader.GetString();
  trainer_reader.ExpectEnd();
  return trainer_reader.status();
}

// Dense relation adjacency matrices A_R.
std::vector<linalg::Matrix> RelationAdjacency(const KnowledgeGraph& kg) {
  std::vector<linalg::Matrix> adjacency(
      kg.NumRelations(), linalg::Matrix(kg.NumEntities(), kg.NumEntities()));
  for (const Triple& triple : kg.Triples()) {
    adjacency[triple.relation](triple.head, triple.tail) = 1.0;
  }
  return adjacency;
}

}  // namespace

double RescalModel::Score(int head, int relation, int tail) const {
  const std::vector<double> bt =
      relations[relation].Apply(entities.ConstRowSpan(tail));
  return linalg::Dot(entities.ConstRowSpan(head), bt);
}

double RescalModel::ReconstructionError(const KnowledgeGraph& kg) const {
  double total = 0.0;
  for (int r = 0; r < kg.NumRelations(); ++r) {
    const linalg::Matrix predicted =
        entities * relations[r] * entities.Transposed();
    for (int h = 0; h < kg.NumEntities(); ++h) {
      for (int t = 0; t < kg.NumEntities(); ++t) {
        const double target = kg.HasTriple(h, r, t) ? 1.0 : 0.0;
        const double diff = predicted(h, t) - target;
        total += diff * diff;
      }
    }
  }
  return total;
}

Status ValidateRescalOptions(const RescalOptions& options) {
  return ValidateOptions({
      {"dimension", static_cast<double>(options.dimension),
       OptionCheck::Rule::kPositive},
      // Zero epochs is a valid "untrained baseline" request.
      {"epochs", static_cast<double>(options.epochs),
       OptionCheck::Rule::kNonNegative},
      {"learning_rate", options.learning_rate,
       OptionCheck::Rule::kPositiveFinite},
      {"l2", options.l2, OptionCheck::Rule::kNonNegative},
  });
}

RescalModel TrainRescal(const KnowledgeGraph& kg, const RescalOptions& options,
                        Rng& rng) {
  Budget unlimited;
  return *TrainRescalBudgeted(kg, options, rng, unlimited);
}

StatusOr<RescalModel> TrainRescalBudgeted(const KnowledgeGraph& kg,
                                          const RescalOptions& options,
                                          Rng& rng, Budget& budget) {
  if (Status status = ValidateRescalOptions(options); !status.ok()) {
    return status;
  }
  const int n = kg.NumEntities();
  const int d = options.dimension;
  if (n < 2) {
    return Status::InvalidArgument(
        "RESCAL training needs at least two entities");
  }
  if (kg.NumRelations() < 1) {
    return Status::InvalidArgument(
        "RESCAL training needs at least one relation");
  }
  if (Status status = embed::ValidateCheckpointOptions(options.checkpoint);
      !status.ok()) {
    return status;
  }
  if (budget.Exhausted()) return budget.ExhaustedError(kOperation);

  const CheckpointOptions& ckpt = options.checkpoint;
  const uint64_t fingerprint =
      ckpt.enabled() ? RescalFingerprint(kg, options) : 0;

  RescalModel model;
  const double init = 1.0 / std::sqrt(static_cast<double>(d));
  const RecoveryPolicy& recovery = options.recovery;
  double lr_scale = 1.0;  // Backed off on each numeric recovery.
  int retries = 0;
  int start_epoch = 0;

  bool resumed = false;
  if (ckpt.enabled()) {
    StatusOr<std::optional<CheckpointData>> loaded =
        embed::LoadLatestCheckpoint(ckpt, CheckpointKind::kRescal,
                                    fingerprint);
    if (!loaded.ok()) return loaded.status();
    if (loaded->has_value()) {
      std::string rng_state;
      if (Status status = DecodeRescalState(**loaded, model, start_epoch,
                                            lr_scale, retries, rng_state);
          !status.ok()) {
        return status;
      }
      bool shapes_ok = model.entities.rows() == n &&
                       model.entities.cols() == d &&
                       static_cast<int>(model.relations.size()) ==
                           kg.NumRelations();
      for (const linalg::Matrix& relation : model.relations) {
        shapes_ok = shapes_ok && relation.rows() == d && relation.cols() == d;
      }
      if (!shapes_ok) {
        return Status::CorruptedData(
            "RESCAL checkpoint model shape does not match this run's");
      }
      if (Status status = rng.LoadEngineState(rng_state); !status.ok()) {
        return status;
      }
      resumed = true;
      X2VEC_METRIC_COUNT("checkpoint.resumes", 1);
    }
  }
  if (!resumed) {
    model.entities = linalg::Matrix(n, d);
    for (double& v : model.entities.mutable_data()) {
      v = UniformReal(rng, -init, init);
    }
    model.relations.assign(kg.NumRelations(), linalg::Matrix(d, d));
    for (linalg::Matrix& b : model.relations) {
      for (double& v : b.mutable_data()) v = UniformReal(rng, -init, init);
    }
  }

  const std::vector<linalg::Matrix> targets = RelationAdjacency(kg);

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    const double lr = options.learning_rate * lr_scale;
    double epoch_loss = 0.0;
    // Full-batch gradients of sum_R ||X B_R X^T - A_R||^2.
    linalg::Matrix x_gradient(n, d);
    for (int r = 0; r < kg.NumRelations(); ++r) {
      if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
      const linalg::Matrix& b = model.relations[r];
      const linalg::Matrix xb = model.entities * b;                 // n x d.
      const linalg::Matrix xbt = model.entities * b.Transposed();   // n x d.
      const linalg::Matrix residual =
          xb * model.entities.Transposed() - targets[r];            // n x n.
      const double residual_norm = residual.FrobeniusNorm();
      epoch_loss += residual_norm * residual_norm;
      // dX  += 2 (E X B^T + E^T X B),  dB = 2 X^T E X.
      x_gradient += (residual * xbt + residual.Transposed() * xb) * 2.0;
      const linalg::Matrix b_gradient =
          (model.entities.Transposed() * residual * model.entities) * 2.0;
      model.relations[r] -= (b_gradient + b * (2.0 * options.l2)) * lr;
    }
    x_gradient += model.entities * (2.0 * options.l2);
    model.entities -= x_gradient * lr;

    // Per-epoch numeric health check with bounded self-healing.
    bool healthy = std::isfinite(epoch_loss) &&
                   linalg::MatrixHealthy(model.entities, recovery.max_abs);
    for (const linalg::Matrix& relation : model.relations) {
      healthy = healthy && linalg::MatrixHealthy(relation, recovery.max_abs);
    }
    if (!healthy) {
      if (++retries > recovery.max_retries) {
        return Status::Internal(
            "RESCAL training diverged (non-finite or runaway parameters) and "
            "exhausted " +
            std::to_string(recovery.max_retries) + " recovery retries");
      }
      lr_scale *= recovery.lr_backoff;
      linalg::ReseedUnhealthyRows(model.entities, init, recovery.max_abs, rng);
      for (linalg::Matrix& relation : model.relations) {
        linalg::ReseedUnhealthyRows(relation, init, recovery.max_abs, rng);
      }
      --epoch;  // Retry the failed epoch with the gentler settings.
      continue;
    }

    // Healthy epoch barrier: persist the resume state.
    if (ckpt.enabled() && (epoch + 1) % ckpt.every_n_epochs == 0) {
      if (Status status = embed::SaveCheckpoint(
              ckpt, epoch + 1,
              EncodeRescalState(fingerprint, model, epoch + 1, lr_scale,
                                retries, rng.SaveEngineState()));
          !status.ok()) {
        return status;
      }
    }
  }
  return model;
}

}  // namespace x2vec::kg
