#include "kg/rescal.h"

#include <cmath>

namespace x2vec::kg {
namespace {

// Dense relation adjacency matrices A_R.
std::vector<linalg::Matrix> RelationAdjacency(const KnowledgeGraph& kg) {
  std::vector<linalg::Matrix> adjacency(
      kg.NumRelations(), linalg::Matrix(kg.NumEntities(), kg.NumEntities()));
  for (const Triple& triple : kg.Triples()) {
    adjacency[triple.relation](triple.head, triple.tail) = 1.0;
  }
  return adjacency;
}

}  // namespace

double RescalModel::Score(int head, int relation, int tail) const {
  const std::vector<double> bt =
      relations[relation].Apply(entities.Row(tail));
  return linalg::Dot(entities.Row(head), bt);
}

double RescalModel::ReconstructionError(const KnowledgeGraph& kg) const {
  double total = 0.0;
  for (int r = 0; r < kg.NumRelations(); ++r) {
    const linalg::Matrix predicted =
        entities * relations[r] * entities.Transposed();
    for (int h = 0; h < kg.NumEntities(); ++h) {
      for (int t = 0; t < kg.NumEntities(); ++t) {
        const double target = kg.HasTriple(h, r, t) ? 1.0 : 0.0;
        const double diff = predicted(h, t) - target;
        total += diff * diff;
      }
    }
  }
  return total;
}

RescalModel TrainRescal(const KnowledgeGraph& kg, const RescalOptions& options,
                        Rng& rng) {
  const int n = kg.NumEntities();
  const int d = options.dimension;
  X2VEC_CHECK_GT(n, 1);
  X2VEC_CHECK_GT(kg.NumRelations(), 0);

  RescalModel model;
  model.entities = linalg::Matrix(n, d);
  const double init = 1.0 / std::sqrt(static_cast<double>(d));
  for (double& v : model.entities.mutable_data()) {
    v = UniformReal(rng, -init, init);
  }
  model.relations.assign(kg.NumRelations(), linalg::Matrix(d, d));
  for (linalg::Matrix& b : model.relations) {
    for (double& v : b.mutable_data()) v = UniformReal(rng, -init, init);
  }

  const std::vector<linalg::Matrix> targets = RelationAdjacency(kg);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Full-batch gradients of sum_R ||X B_R X^T - A_R||^2.
    linalg::Matrix x_gradient(n, d);
    for (int r = 0; r < kg.NumRelations(); ++r) {
      const linalg::Matrix& b = model.relations[r];
      const linalg::Matrix xb = model.entities * b;                 // n x d.
      const linalg::Matrix xbt = model.entities * b.Transposed();   // n x d.
      const linalg::Matrix residual =
          xb * model.entities.Transposed() - targets[r];            // n x n.
      // dX  += 2 (E X B^T + E^T X B),  dB = 2 X^T E X.
      x_gradient += (residual * xbt + residual.Transposed() * xb) * 2.0;
      const linalg::Matrix b_gradient =
          (model.entities.Transposed() * residual * model.entities) * 2.0;
      model.relations[r] -=
          (b_gradient + b * (2.0 * options.l2)) * options.learning_rate;
    }
    x_gradient += model.entities * (2.0 * options.l2);
    model.entities -= x_gradient * options.learning_rate;
  }
  return model;
}

}  // namespace x2vec::kg
