#include "kg/rescal.h"

#include <cmath>

#include "base/validation.h"
#include "linalg/health.h"

namespace x2vec::kg {
namespace {

constexpr std::string_view kOperation = "RESCAL training";

// Dense relation adjacency matrices A_R.
std::vector<linalg::Matrix> RelationAdjacency(const KnowledgeGraph& kg) {
  std::vector<linalg::Matrix> adjacency(
      kg.NumRelations(), linalg::Matrix(kg.NumEntities(), kg.NumEntities()));
  for (const Triple& triple : kg.Triples()) {
    adjacency[triple.relation](triple.head, triple.tail) = 1.0;
  }
  return adjacency;
}

}  // namespace

double RescalModel::Score(int head, int relation, int tail) const {
  const std::vector<double> bt =
      relations[relation].Apply(entities.ConstRowSpan(tail));
  return linalg::Dot(entities.ConstRowSpan(head), bt);
}

double RescalModel::ReconstructionError(const KnowledgeGraph& kg) const {
  double total = 0.0;
  for (int r = 0; r < kg.NumRelations(); ++r) {
    const linalg::Matrix predicted =
        entities * relations[r] * entities.Transposed();
    for (int h = 0; h < kg.NumEntities(); ++h) {
      for (int t = 0; t < kg.NumEntities(); ++t) {
        const double target = kg.HasTriple(h, r, t) ? 1.0 : 0.0;
        const double diff = predicted(h, t) - target;
        total += diff * diff;
      }
    }
  }
  return total;
}

Status ValidateRescalOptions(const RescalOptions& options) {
  return ValidateOptions({
      {"dimension", static_cast<double>(options.dimension),
       OptionCheck::Rule::kPositive},
      // Zero epochs is a valid "untrained baseline" request.
      {"epochs", static_cast<double>(options.epochs),
       OptionCheck::Rule::kNonNegative},
      {"learning_rate", options.learning_rate,
       OptionCheck::Rule::kPositiveFinite},
      {"l2", options.l2, OptionCheck::Rule::kNonNegative},
  });
}

RescalModel TrainRescal(const KnowledgeGraph& kg, const RescalOptions& options,
                        Rng& rng) {
  Budget unlimited;
  return *TrainRescalBudgeted(kg, options, rng, unlimited);
}

StatusOr<RescalModel> TrainRescalBudgeted(const KnowledgeGraph& kg,
                                          const RescalOptions& options,
                                          Rng& rng, Budget& budget) {
  if (Status status = ValidateRescalOptions(options); !status.ok()) {
    return status;
  }
  const int n = kg.NumEntities();
  const int d = options.dimension;
  if (n < 2) {
    return Status::InvalidArgument(
        "RESCAL training needs at least two entities");
  }
  if (kg.NumRelations() < 1) {
    return Status::InvalidArgument(
        "RESCAL training needs at least one relation");
  }
  if (budget.Exhausted()) return budget.ExhaustedError(kOperation);

  RescalModel model;
  model.entities = linalg::Matrix(n, d);
  const double init = 1.0 / std::sqrt(static_cast<double>(d));
  for (double& v : model.entities.mutable_data()) {
    v = UniformReal(rng, -init, init);
  }
  model.relations.assign(kg.NumRelations(), linalg::Matrix(d, d));
  for (linalg::Matrix& b : model.relations) {
    for (double& v : b.mutable_data()) v = UniformReal(rng, -init, init);
  }

  const std::vector<linalg::Matrix> targets = RelationAdjacency(kg);

  const RecoveryPolicy& recovery = options.recovery;
  double lr_scale = 1.0;  // Backed off on each numeric recovery.
  int retries = 0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr = options.learning_rate * lr_scale;
    double epoch_loss = 0.0;
    // Full-batch gradients of sum_R ||X B_R X^T - A_R||^2.
    linalg::Matrix x_gradient(n, d);
    for (int r = 0; r < kg.NumRelations(); ++r) {
      if (!budget.Spend(1)) return budget.ExhaustedError(kOperation);
      const linalg::Matrix& b = model.relations[r];
      const linalg::Matrix xb = model.entities * b;                 // n x d.
      const linalg::Matrix xbt = model.entities * b.Transposed();   // n x d.
      const linalg::Matrix residual =
          xb * model.entities.Transposed() - targets[r];            // n x n.
      const double residual_norm = residual.FrobeniusNorm();
      epoch_loss += residual_norm * residual_norm;
      // dX  += 2 (E X B^T + E^T X B),  dB = 2 X^T E X.
      x_gradient += (residual * xbt + residual.Transposed() * xb) * 2.0;
      const linalg::Matrix b_gradient =
          (model.entities.Transposed() * residual * model.entities) * 2.0;
      model.relations[r] -= (b_gradient + b * (2.0 * options.l2)) * lr;
    }
    x_gradient += model.entities * (2.0 * options.l2);
    model.entities -= x_gradient * lr;

    // Per-epoch numeric health check with bounded self-healing.
    bool healthy = std::isfinite(epoch_loss) &&
                   linalg::MatrixHealthy(model.entities, recovery.max_abs);
    for (const linalg::Matrix& relation : model.relations) {
      healthy = healthy && linalg::MatrixHealthy(relation, recovery.max_abs);
    }
    if (!healthy) {
      if (++retries > recovery.max_retries) {
        return Status::Internal(
            "RESCAL training diverged (non-finite or runaway parameters) and "
            "exhausted " +
            std::to_string(recovery.max_retries) + " recovery retries");
      }
      lr_scale *= recovery.lr_backoff;
      linalg::ReseedUnhealthyRows(model.entities, init, recovery.max_abs, rng);
      for (linalg::Matrix& relation : model.relations) {
        linalg::ReseedUnhealthyRows(relation, init, recovery.max_abs, rng);
      }
      --epoch;  // Retry the failed epoch with the gentler settings.
      continue;
    }
  }
  return model;
}

}  // namespace x2vec::kg
