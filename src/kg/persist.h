#pragma once

#include <string>

#include "base/fs.h"
#include "base/status.h"
#include "embed/checkpoint.h"
#include "kg/knowledge_graph.h"
#include "kg/rescal.h"
#include "kg/transe.h"

namespace x2vec::kg {

/// Persistence for the knowledge-graph models, built on the same
/// checksummed container as embed/checkpoint.h (kg links embed; embed
/// never links kg, which is why these functions live here rather than
/// next to the generic format).

/// Folds the full knowledge graph — entity/relation counts and every
/// triple — into `hasher`. The trainers use this to fingerprint their
/// checkpoints so a checkpoint from different data is skipped, not
/// resumed.
void HashKnowledgeGraph(embed::Fnv1a& hasher, const KnowledgeGraph& kg);

/// Writes a trained TransE model (entities + relations) atomically.
[[nodiscard]] Status SaveTransEModel(Fs& fs, const std::string& path,
                                     const TransEModel& model);

/// Loads a file written by SaveTransEModel. kCorruptedData on checksum or
/// structure damage, kNotFound / kIoError from the filesystem.
[[nodiscard]] StatusOr<TransEModel> LoadTransEModel(Fs& fs,
                                                    const std::string& path);

/// Writes a trained RESCAL model (entity matrix + per-relation bilinear
/// forms) atomically.
[[nodiscard]] Status SaveRescalModel(Fs& fs, const std::string& path,
                                     const RescalModel& model);

/// Loads a file written by SaveRescalModel.
[[nodiscard]] StatusOr<RescalModel> LoadRescalModel(Fs& fs,
                                                    const std::string& path);

}  // namespace x2vec::kg
