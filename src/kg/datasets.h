#pragma once

#include "base/rng.h"
#include "kg/knowledge_graph.h"

namespace x2vec::kg {

/// The countries/capitals knowledge graph of the paper's introduction
/// (Paris/France, Santiago/Chile, ...) with capital-of, in-continent and
/// speaks relations over `num_countries` synthetic countries; the first
/// four entities are the paper's own example.
///
/// Lives in kg (not data): data sits below kg in the module layering, so
/// the one dataset built from kg types is declared next to those types.
KnowledgeGraph CountriesKnowledgeGraph(int num_countries, Rng& rng);

}  // namespace x2vec::kg
