#pragma once

#include <vector>

#include "base/budget.h"
#include "base/recovery.h"
#include "base/rng.h"
#include "base/status.h"
#include "embed/checkpoint.h"
#include "kg/knowledge_graph.h"
#include "linalg/matrix.h"

namespace x2vec::kg {

/// TransE (Section 2.3 [Bordes et al.]): embeds entities and relations so
/// that x_head + t_relation ≈ x_tail; trained with margin ranking loss over
/// corrupted triples. Entity vectors are renormalised to the unit sphere
/// each epoch, as in the original algorithm.
struct TransEOptions {
  int dimension = 24;
  int epochs = 200;
  double learning_rate = 0.02;
  double margin = 1.0;
  /// Numeric-health guardrails: step clipping plus NaN/Inf detection with
  /// LR-backoff retries. The defaults never engage on a healthy run.
  RecoveryPolicy recovery;
  /// Opt-in crash-safe persistence (see embed/checkpoint.h): snapshots at
  /// epoch barriers, resume from the newest intact checkpoint, final model
  /// bit-identical to an uninterrupted run.
  embed::CheckpointOptions checkpoint;
};

struct TransEModel {
  linalg::Matrix entities;   ///< One row per entity.
  linalg::Matrix relations;  ///< One row per relation (the translations t).

  /// L2 dissimilarity ||x_h + t_r - x_t|| — lower means more plausible.
  double Score(int head, int relation, int tail) const;

  /// Rank of the true tail among all entities when (head, relation, ?) is
  /// scored, filtered to ignore other known-true tails.
  int TailRank(const KnowledgeGraph& kg, const Triple& triple) const;
};

/// kInvalidArgument naming the first bad field (non-positive dimension,
/// negative epochs, non-finite or non-positive learning rate, negative
/// margin), OK otherwise. Zero epochs requests the untrained baseline.
[[nodiscard]] Status ValidateTransEOptions(const TransEOptions& options);

TransEModel TrainTransE(const KnowledgeGraph& kg, const TransEOptions& options,
                        Rng& rng);

/// Budgeted, self-healing variant. One work unit = one training triple in
/// one epoch. After every epoch the embeddings and accumulated positive
/// energy are checked for NaN/Inf and runaway magnitudes; on failure the
/// trainer backs off the learning rate, tightens the step clip, reseeds the
/// offending rows and retries the epoch, giving up with kInternal after
/// `options.recovery.max_retries` cumulative retries. Returns
/// kResourceExhausted when the budget runs out and kInvalidArgument for bad
/// options or a degenerate knowledge graph. With an unlimited budget and a
/// healthy run the result is bit-identical to TrainTransE (which is a thin
/// wrapper over this).
[[nodiscard]] StatusOr<TransEModel> TrainTransEBudgeted(const KnowledgeGraph& kg,
                                          const TransEOptions& options,
                                          Rng& rng, Budget& budget);

/// Link-prediction evaluation: filtered tail ranks for every test triple.
std::vector<int> TailRanks(const TransEModel& model, const KnowledgeGraph& kg,
                           const std::vector<Triple>& test);

}  // namespace x2vec::kg
