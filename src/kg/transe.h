#ifndef X2VEC_KG_TRANSE_H_
#define X2VEC_KG_TRANSE_H_

#include <vector>

#include "base/rng.h"
#include "kg/knowledge_graph.h"
#include "linalg/matrix.h"

namespace x2vec::kg {

/// TransE (Section 2.3 [Bordes et al.]): embeds entities and relations so
/// that x_head + t_relation ≈ x_tail; trained with margin ranking loss over
/// corrupted triples. Entity vectors are renormalised to the unit sphere
/// each epoch, as in the original algorithm.
struct TransEOptions {
  int dimension = 24;
  int epochs = 200;
  double learning_rate = 0.02;
  double margin = 1.0;
};

struct TransEModel {
  linalg::Matrix entities;   ///< One row per entity.
  linalg::Matrix relations;  ///< One row per relation (the translations t).

  /// L2 dissimilarity ||x_h + t_r - x_t|| — lower means more plausible.
  double Score(int head, int relation, int tail) const;

  /// Rank of the true tail among all entities when (head, relation, ?) is
  /// scored, filtered to ignore other known-true tails.
  int TailRank(const KnowledgeGraph& kg, const Triple& triple) const;
};

TransEModel TrainTransE(const KnowledgeGraph& kg, const TransEOptions& options,
                        Rng& rng);

/// Link-prediction evaluation: filtered tail ranks for every test triple.
std::vector<int> TailRanks(const TransEModel& model, const KnowledgeGraph& kg,
                           const std::vector<Triple>& test);

}  // namespace x2vec::kg

#endif  // X2VEC_KG_TRANSE_H_
