#pragma once

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace x2vec::kernel {

/// Node kernels (Section 2.4 [Kondor-Lafferty, Smola-Kondor]): positive
/// semidefinite similarity matrices over the vertices of one graph, i.e.
/// implicit node embeddings.

/// Combinatorial graph Laplacian L = D - A.
linalg::Matrix Laplacian(const graph::Graph& g);

/// Diffusion (heat) kernel K = exp(-beta L), computed via the Laplacian
/// eigendecomposition. Always PSD.
linalg::Matrix DiffusionKernel(const graph::Graph& g, double beta);

/// Regularised Laplacian kernel K = (I + sigma^2 L)^{-1}, via eigen.
linalg::Matrix RegularizedLaplacianKernel(const graph::Graph& g,
                                          double sigma);

/// p-step random-walk kernel K = (a I - L)^p with a >= 2 (Smola-Kondor).
linalg::Matrix PStepRandomWalkKernel(const graph::Graph& g, double a, int p);

}  // namespace x2vec::kernel
