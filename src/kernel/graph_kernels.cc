#include "kernel/graph_kernels.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <tuple>

#include "base/metrics.h"
#include "base/parallel.h"
#include "graph/algorithms.h"
#include "linalg/eigen.h"
#include "linalg/kernels_backend.h"

namespace x2vec::kernel {
namespace {

using graph::Graph;

// Symmetric Gram fill, parallel over the upper triangle. Each entry is an
// independent dot product, so the result is bit-identical at any thread
// count.
linalg::Matrix GramFromDense(const std::vector<std::vector<double>>& features) {
  const int n = static_cast<int>(features.size());
  linalg::Matrix k(n, n);
  // Gauge written here, at the serial entry, never inside the ParallelFor.
  X2VEC_METRIC_GAUGE("kernels.backend",
                     static_cast<double>(linalg::ActiveKernelBackend()));
  const int64_t pairs = static_cast<int64_t>(n) * (n + 1) / 2;
  const Status status = ParallelFor(pairs, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const auto [i, j] = UpperTriangleIndex(t, n);
      const double dot = linalg::Dot(features[i], features[j]);
      k(i, j) = dot;
      k(j, i) = dot;
    }
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return k;
}

// Sparse dot of two sorted (key -> count) maps.
template <typename Key>
double MapDot(const std::map<Key, double>& a, const std::map<Key, double>& b) {
  double total = 0.0;
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (i->first < j->first) {
      ++i;
    } else if (j->first < i->first) {
      ++j;
    } else {
      total += i->second * j->second;
      ++i;
      ++j;
    }
  }
  return total;
}

// Gram fill over sparse per-graph count maps, parallel over the upper
// triangle. Counts are integral, so the sums of products are exact and the
// matrix is independent of key numbering and summation grouping.
template <typename Key>
linalg::Matrix GramFromCountMaps(
    const std::vector<std::map<Key, double>>& counts) {
  const int n = static_cast<int>(counts.size());
  linalg::Matrix gram(n, n);
  const int64_t pairs = static_cast<int64_t>(n) * (n + 1) / 2;
  const Status status = ParallelFor(pairs, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const auto [i, j] = UpperTriangleIndex(t, n);
      const double dot = MapDot(counts[i], counts[j]);
      gram(i, j) = dot;
      gram(j, i) = dot;
    }
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return gram;
}

}  // namespace

linalg::Matrix ShortestPathKernelMatrix(const std::vector<Graph>& graphs) {
  // Per-graph feature maps over (label_u, label_v, dist) triples, one
  // independent APSP per graph.
  const auto counts =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        const auto dist = graph::AllPairsShortestPaths(graphs[g]);
        const int n = graphs[g].NumVertices();
        std::map<std::tuple<int, int, int>, double> local;
        for (int u = 0; u < n; ++u) {
          for (int v = u + 1; v < n; ++v) {
            if (dist[u][v] <= 0) continue;
            const int a = std::min(graphs[g].VertexLabel(u),
                                   graphs[g].VertexLabel(v));
            const int b = std::max(graphs[g].VertexLabel(u),
                                   graphs[g].VertexLabel(v));
            local[std::make_tuple(a, b, dist[u][v])] += 1.0;
          }
        }
        return local;
      });
  return GramFromCountMaps(counts);
}

linalg::Matrix RandomWalkKernelMatrix(const std::vector<Graph>& graphs,
                                      double lambda, int max_length) {
  X2VEC_CHECK_GT(lambda, 0.0);
  X2VEC_CHECK_GE(max_length, 0);
  const int n = static_cast<int>(graphs.size());
  linalg::Matrix gram(n, n);
  // Each (i, j) entry builds its own product graph; the upper triangle is
  // the natural parallel decomposition.
  const int64_t pairs = static_cast<int64_t>(n) * (n + 1) / 2;
  const Status status = ParallelFor(pairs, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const auto [i, j] = UpperTriangleIndex(t, n);
      const Graph product = graph::DirectProduct(graphs[i], graphs[j]);
      // sum_k lambda^k 1^T A^k 1 on the product graph.
      const int np = product.NumVertices();
      std::vector<double> ones(np, 1.0);
      const linalg::Matrix a = product.AdjacencyMatrix();
      double total = np;  // k = 0 term.
      std::vector<double> current = ones;
      double weight = 1.0;
      for (int step = 1; step <= max_length; ++step) {
        current = a.Apply(current);
        weight *= lambda;
        double sum = 0.0;
        for (double x : current) sum += x;
        total += weight * sum;
      }
      gram(i, j) = total;
      gram(j, i) = total;
    }
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return gram;
}

std::vector<double> ThreeGraphletCounts(const Graph& g) {
  X2VEC_CHECK(!g.directed());
  const int n = g.NumVertices();
  // counts = (empty, one edge, path/wedge, triangle) over all C(n,3)
  // vertex triples.
  std::vector<double> counts(4, 0.0);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        const int edges = (g.HasEdge(a, b) ? 1 : 0) +
                          (g.HasEdge(a, c) ? 1 : 0) +
                          (g.HasEdge(b, c) ? 1 : 0);
        counts[edges] += 1.0;
      }
    }
  }
  return counts;
}

linalg::Matrix GraphletKernelMatrix(const std::vector<Graph>& graphs) {
  // O(n^3) triple enumeration per graph — parallel over the dataset.
  const std::vector<std::vector<double>> features =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        const std::vector<double> counts = ThreeGraphletCounts(graphs[g]);
        // Use the non-empty graphlets (edge+isolated, wedge, triangle),
        // normalised to a distribution so graph size does not dominate; the
        // empty triple would otherwise swamp the histogram on sparse graphs.
        std::vector<double> connected(counts.begin() + 1, counts.end());
        double total = 0.0;
        for (double c : connected) total += c;
        if (total > 0.0) {
          for (double& c : connected) c /= total;
        }
        return connected;
      });
  return GramFromDense(features);
}

linalg::Matrix HomVectorKernelMatrix(const std::vector<Graph>& graphs,
                                     const std::vector<hom::Pattern>& patterns) {
  // One independent homomorphism-vector computation per graph.
  std::vector<std::vector<double>> features =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        return hom::LogScaledHomVector(graphs[g], patterns);
      });
  // Standardise each pattern coordinate over the dataset (zero mean, unit
  // variance): a single highly discriminative pattern (say C3) should not
  // be drowned by large shared walk counts.
  if (!features.empty()) {
    const size_t dim = features[0].size();
    for (size_t j = 0; j < dim; ++j) {
      double mean = 0.0;
      for (const auto& f : features) mean += f[j];
      mean /= features.size();
      double variance = 0.0;
      for (const auto& f : features) {
        variance += (f[j] - mean) * (f[j] - mean);
      }
      variance /= features.size();
      const double scale = variance > 1e-18 ? 1.0 / std::sqrt(variance) : 0.0;
      for (auto& f : features) f[j] = (f[j] - mean) * scale;
    }
  }
  return GramFromDense(features);
}

linalg::Matrix ScaledHomKernelMatrix(const std::vector<Graph>& graphs,
                                     const std::vector<hom::Pattern>& patterns) {
  // Group patterns by order k; scale hom(F, .) by k^{-k/2} and each order
  // class by 1/sqrt(|F_k|) so the Gram matrix realises eq. (4.1).
  std::map<int, int> order_counts;
  for (const hom::Pattern& p : patterns) ++order_counts[p.graph.NumVertices()];

  const std::vector<std::vector<double>> features =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        const std::vector<double> raw = hom::HomVector(graphs[g], patterns);
        std::vector<double> scaled(raw.size());
        for (size_t i = 0; i < raw.size(); ++i) {
          const int k = patterns[i].graph.NumVertices();
          const double class_scale = 1.0 / std::sqrt(
              static_cast<double>(order_counts.at(k)));
          scaled[i] = raw[i] * std::pow(static_cast<double>(k), -k / 2.0) *
                      class_scale;
        }
        return scaled;
      });
  return GramFromDense(features);
}

linalg::Matrix NormalizeKernel(const linalg::Matrix& k) {
  X2VEC_CHECK_EQ(k.rows(), k.cols());
  const int n = k.rows();
  std::vector<double> diag(n);
  for (int i = 0; i < n; ++i) diag[i] = k(i, i);
  linalg::Matrix out(n, n);
  for (int i = 0; i < n; ++i) {
    const std::span<const double> in = k.ConstRowSpan(i);
    const std::span<double> normalized = out.RowSpan(i);
    for (int j = 0; j < n; ++j) {
      const double denom = std::sqrt(diag[i] * diag[j]);
      normalized[j] = denom > 0.0 ? in[j] / denom : 0.0;
    }
  }
  return out;
}

linalg::Matrix CenterKernel(const linalg::Matrix& k) {
  X2VEC_CHECK_EQ(k.rows(), k.cols());
  const int n = k.rows();
  linalg::Matrix centering = linalg::Matrix::Identity(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) centering(i, j) -= 1.0 / n;
  }
  return centering * k * centering;
}

bool IsPositiveSemidefinite(const linalg::Matrix& k, double tol) {
  const std::vector<double> spectrum = linalg::Spectrum(k);
  return spectrum.empty() || spectrum.back() >= -tol;
}

}  // namespace x2vec::kernel
