#pragma once

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace x2vec::kernel {

/// Graph kernel from folklore 2-WL colours (Section 3.5's closing pointer
/// to higher-dimensional WL kernels [Morris et al. 2017]): all graphs of
/// the dataset are refined with a shared signature dictionary per round,
/// and graph G's feature vector counts its vertex-PAIR colours across
/// rounds 0..rounds. Strictly more expressive than the 1-WL subtree
/// kernel (it separates C6 from 2xC3) at O(n^3) per graph per round.
linalg::Matrix TwoWlKernelMatrix(const std::vector<graph::Graph>& graphs,
                                 int rounds);

}  // namespace x2vec::kernel
