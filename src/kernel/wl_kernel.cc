#include "kernel/wl_kernel.h"

#include <algorithm>
#include <cmath>

#include "base/metrics.h"
#include "base/parallel.h"
#include "base/trace.h"
#include "graph/algorithms.h"
#include "wl/color_refinement.h"

namespace x2vec::kernel {
namespace {

using graph::Graph;

// Joint refinement over a whole dataset: colours are computed on the
// disjoint union so ids line up across graphs. Returns per-round colours
// restricted to each graph plus the per-round colour counts.
struct JointColors {
  // colors[g][round][v].
  std::vector<std::vector<std::vector<int>>> colors;
  std::vector<int> colors_per_round;
};

JointColors RefineDataset(const std::vector<Graph>& graphs, int rounds) {
  X2VEC_CHECK(!graphs.empty());
  Graph joint = graphs[0];
  std::vector<int> offsets = {0};
  for (size_t i = 1; i < graphs.size(); ++i) {
    offsets.push_back(joint.NumVertices());
    joint = graph::DisjointUnion(joint, graphs[i]);
  }
  wl::RefinementOptions options;
  options.max_rounds = rounds;
  const wl::RefinementResult refinement = wl::ColorRefinement(joint, options);

  JointColors out;
  out.colors_per_round = refinement.colors_per_round;
  out.colors.resize(graphs.size());
  // Restricting the joint colouring to each graph is independent per graph.
  const Status status = ParallelFor(
      static_cast<int64_t>(graphs.size()), 0, [&](int64_t lo, int64_t hi) {
        for (int64_t g = lo; g < hi; ++g) {
          out.colors[g].resize(refinement.round_colors.size());
          for (size_t r = 0; r < refinement.round_colors.size(); ++r) {
            const std::vector<int>& round = refinement.round_colors[r];
            out.colors[g][r].assign(
                round.begin() + offsets[g],
                round.begin() + offsets[g] + graphs[g].NumVertices());
          }
        }
        return Status::Ok();
      });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return out;
}

SparseVector FromCounts(const std::map<int64_t, double>& counts) {
  SparseVector v;
  v.entries.assign(counts.begin(), counts.end());
  return v;
}

// Symmetric Gram fill over sparse features, parallel over the upper
// triangle; every entry is an independent merge-dot.
linalg::Matrix GramFromSparse(const std::vector<SparseVector>& features) {
  trace::Span span("kernel.gram_from_sparse");
  const int n = static_cast<int>(features.size());
  linalg::Matrix k(n, n);
  const int64_t pairs = static_cast<int64_t>(n) * (n + 1) / 2;
  const Status status = ParallelFor(pairs, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const auto [i, j] = UpperTriangleIndex(t, n);
      const double dot = features[i].Dot(features[j]);
      k(i, j) = dot;
      k(j, i) = dot;
    }
    X2VEC_METRIC_COUNT("kernel.gram_entries", hi - lo);
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  span.AddWork(pairs);
  return k;
}

}  // namespace

double SparseVector::Dot(const SparseVector& other) const {
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < entries.size() && j < other.entries.size()) {
    if (entries[i].first < other.entries[j].first) {
      ++i;
    } else if (entries[i].first > other.entries[j].first) {
      ++j;
    } else {
      total += entries[i].second * other.entries[j].second;
      ++i;
      ++j;
    }
  }
  return total;
}

WlFeatureSet WlSubtreeFeatures(const std::vector<Graph>& graphs, int rounds) {
  X2VEC_CHECK_GE(rounds, 0);
  const JointColors joint = RefineDataset(graphs, rounds);
  WlFeatureSet out;
  out.rounds = rounds;
  // Feature id = round * kRoundStride + colour; colour counts never exceed
  // total vertices so a fixed stride is safe.
  int64_t stride = 1;
  for (int count : joint.colors_per_round) {
    stride = std::max<int64_t>(stride, count + 1);
  }
  const int usable_rounds = static_cast<int>(joint.colors_per_round.size());
  // Per-graph colour histograms are independent across the dataset.
  out.features =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        std::map<int64_t, double> counts;
        for (int r = 0; r < std::min(rounds + 1, usable_rounds); ++r) {
          for (int color : joint.colors[g][r]) {
            counts[static_cast<int64_t>(r) * stride + color] += 1.0;
          }
        }
        return FromCounts(counts);
      });
  out.dimension = stride * usable_rounds;
  return out;
}

linalg::Matrix WlSubtreeKernelMatrix(const std::vector<Graph>& graphs,
                                     int rounds) {
  return GramFromSparse(WlSubtreeFeatures(graphs, rounds).features);
}

linalg::Matrix DiscountedWlKernelMatrix(const std::vector<Graph>& graphs,
                                        int max_rounds) {
  const JointColors joint = RefineDataset(graphs, max_rounds);
  const int usable_rounds = static_cast<int>(joint.colors_per_round.size());
  int64_t stride = 1;
  for (int count : joint.colors_per_round) {
    stride = std::max<int64_t>(stride, count + 1);
  }
  // Per-round sqrt(2^-r) weights (split across the two Gram factors),
  // precomputed once so every graph applies identical values.
  const int counted_rounds = std::min(max_rounds + 1, usable_rounds);
  std::vector<double> round_weight(counted_rounds);
  double weight = 1.0;
  for (int r = 0; r < counted_rounds; ++r) {
    round_weight[r] = std::sqrt(weight);
    weight /= 2.0;
  }
  const std::vector<SparseVector> features =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        std::map<int64_t, double> counts;
        for (int r = 0; r < counted_rounds; ++r) {
          for (int color : joint.colors[g][r]) {
            counts[static_cast<int64_t>(r) * stride + color] +=
                round_weight[r];
          }
        }
        return FromCounts(counts);
      });
  return GramFromSparse(features);
}

linalg::Matrix WlShortestPathKernelMatrix(const std::vector<Graph>& graphs,
                                          int rounds) {
  const JointColors joint = RefineDataset(graphs, rounds);
  const int last = static_cast<int>(joint.colors[0].size()) - 1;
  int64_t colors = 1;
  for (int count : joint.colors_per_round) {
    colors = std::max<int64_t>(colors, count + 1);
  }
  // Distance stride shared across the dataset so feature ids align.
  int64_t dist_stride = 2;
  for (const Graph& g : graphs) {
    dist_stride = std::max<int64_t>(dist_stride, g.NumVertices() + 1);
  }
  // One independent APSP + pair histogram per graph.
  const std::vector<SparseVector> features =
      ParallelMap(static_cast<int64_t>(graphs.size()), [&](int64_t g) {
        const std::vector<std::vector<int>> dist =
            graph::AllPairsShortestPaths(graphs[g]);
        const std::vector<int>& color = joint.colors[g][last];
        std::map<int64_t, double> counts;
        const int n = graphs[g].NumVertices();
        for (int u = 0; u < n; ++u) {
          for (int v = u + 1; v < n; ++v) {
            if (dist[u][v] < 0) continue;
            const int a = std::min(color[u], color[v]);
            const int b = std::max(color[u], color[v]);
            const int64_t id =
                (static_cast<int64_t>(a) * colors + b) * dist_stride +
                dist[u][v];
            counts[id] += 1.0;
          }
        }
        return FromCounts(counts);
      });
  return GramFromSparse(features);
}

}  // namespace x2vec::kernel
