#pragma once

#include <vector>

#include "graph/graph.h"
#include "hom/embeddings.h"
#include "linalg/matrix.h"

namespace x2vec::kernel {

/// Shortest-path kernel (Section 2.4 [Borgwardt–Kriegel]): features are
/// triples (label_u, label_v, dist(u, v)) over connected vertex pairs.
linalg::Matrix ShortestPathKernelMatrix(const std::vector<graph::Graph>& graphs);

/// Geometric random-walk kernel (Section 2.4 [Gärtner et al.]):
/// K(G, H) = sum_{k=0..max_length} lambda^k * (number of length-k walk
/// pairs) computed on the direct product graph.
linalg::Matrix RandomWalkKernelMatrix(const std::vector<graph::Graph>& graphs,
                                      double lambda, int max_length);

/// Induced 3-vertex graphlet counts of a graph: (empty, one-edge, path,
/// triangle) — the graphlet kernel's feature map (Section 2.4
/// [Shervashidze et al. 2009]).
std::vector<double> ThreeGraphletCounts(const graph::Graph& g);

/// Graphlet kernel Gram matrix from normalised 3-graphlet counts.
linalg::Matrix GraphletKernelMatrix(const std::vector<graph::Graph>& graphs);

/// Homomorphism-vector kernel: inner products of the log-scaled Hom_F
/// embeddings of Section 4 over the given pattern family.
linalg::Matrix HomVectorKernelMatrix(const std::vector<graph::Graph>& graphs,
                                     const std::vector<hom::Pattern>& patterns);

/// The size-scaled homomorphism kernel of eq. (4.1), truncated to the given
/// family: K(G,H) = sum_k (1/|F_k|) sum_{F in F_k} k^{-k} hom(F,G) hom(F,H),
/// where F_k is the set of patterns with k vertices.
linalg::Matrix ScaledHomKernelMatrix(const std::vector<graph::Graph>& graphs,
                                     const std::vector<hom::Pattern>& patterns);

// -- Kernel matrix utilities -------------------------------------------------

/// K'_ij = K_ij / sqrt(K_ii K_jj) (cosine normalisation); zero diagonals
/// stay zero.
linalg::Matrix NormalizeKernel(const linalg::Matrix& k);

/// Double-centring K' = (I - 1/n J) K (I - 1/n J), as used by kernel PCA.
linalg::Matrix CenterKernel(const linalg::Matrix& k);

/// True if the symmetric matrix is positive semidefinite up to `tol`
/// (minimum eigenvalue >= -tol) — the defining property of a kernel
/// (Section 2.4).
bool IsPositiveSemidefinite(const linalg::Matrix& k, double tol = 1e-8);

}  // namespace x2vec::kernel
