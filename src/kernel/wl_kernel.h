#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace x2vec::kernel {

/// Sparse feature vector: sorted (feature id, value) pairs. Feature ids are
/// only meaningful relative to the map they came from.
struct SparseVector {
  std::vector<std::pair<int64_t, double>> entries;

  double Dot(const SparseVector& other) const;
  double NormSquared() const { return Dot(*this); }
};

/// Explicit Weisfeiler-Leman subtree features of a *dataset* of graphs
/// (Section 3.5): all graphs are refined jointly so colour ids are shared,
/// and graph G's feature vector stacks the counts wl(c, G) for every colour
/// c of every round 0..t. Feature ids encode (round, colour).
struct WlFeatureSet {
  std::vector<SparseVector> features;  ///< One per input graph.
  int rounds = 0;
  int64_t dimension = 0;  ///< Total number of (round, colour) features seen.
};

WlFeatureSet WlSubtreeFeatures(const std::vector<graph::Graph>& graphs,
                               int rounds);

/// K^(t)_WL Gram matrix over the dataset: the t-round WL subtree kernel of
/// Section 3.5, K(G,H) = sum_{i<=t} sum_c wl(c,G) wl(c,H).
linalg::Matrix WlSubtreeKernelMatrix(const std::vector<graph::Graph>& graphs,
                                     int rounds);

/// Round-discounted kernel K_WL with weight 2^{-i} for round i (the
/// round-independent variant defined in Section 3.5), truncated at
/// `max_rounds` (colourings are stable long before on these sizes).
linalg::Matrix DiscountedWlKernelMatrix(const std::vector<graph::Graph>& graphs,
                                        int max_rounds);

/// Weisfeiler-Leman shortest-path kernel: features are triples
/// (colour_u at round t, colour_v at round t, dist(u, v)) over connected
/// vertex pairs [Shervashidze et al. 2011 variant].
linalg::Matrix WlShortestPathKernelMatrix(
    const std::vector<graph::Graph>& graphs, int rounds);

}  // namespace x2vec::kernel
