#include "kernel/kwl_kernel.h"

#include <algorithm>
#include <map>

#include "base/check.h"
#include "base/parallel.h"

namespace x2vec::kernel {
namespace {

using graph::Graph;

// Folklore 2-WL over a dataset with a joint colour namespace. States are
// dense n_g x n_g colour grids per graph.
struct DatasetState {
  std::vector<std::vector<int>> colors;  // colors[g][u * n_g + v].
  int num_colors = 0;
};

int AtomicType(const Graph& g, int u, int v) {
  if (u == v) return 0;
  return g.HasEdge(u, v) ? 1 : 2;
}

DatasetState InitialColors(const std::vector<Graph>& graphs) {
  DatasetState state;
  state.colors.resize(graphs.size());
  std::map<std::pair<int, std::pair<int, int>>, int> dictionary;
  for (size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    const int n = g.NumVertices();
    state.colors[i].resize(static_cast<size_t>(n) * n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        const auto key = std::make_pair(
            AtomicType(g, u, v),
            std::make_pair(g.VertexLabel(u), g.VertexLabel(v)));
        const auto [it, inserted] =
            dictionary.emplace(key, static_cast<int>(dictionary.size()));
        state.colors[i][static_cast<size_t>(u) * n + v] = it->second;
      }
    }
  }
  state.num_colors = static_cast<int>(dictionary.size());
  return state;
}

// One folklore refinement round across the whole dataset. The expensive
// part — building and sorting the n^2 neighbourhood signatures of every
// graph — runs in parallel per graph; colour ids are then assigned from
// the lexicographically sorted signature dictionary, so the numbering
// (and hence the result) is independent of the thread count.
DatasetState Refine(const std::vector<Graph>& graphs,
                    const DatasetState& state) {
  using Row = std::pair<int, int>;            // (c(w,v), c(u,w)).
  using Signature = std::pair<int, std::vector<Row>>;
  std::vector<std::vector<Signature>> signatures(graphs.size());

  Status status = ParallelFor(
      static_cast<int64_t>(graphs.size()), 0, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const int n = graphs[i].NumVertices();
          const std::vector<int>& colors = state.colors[i];
          signatures[i].resize(static_cast<size_t>(n) * n);
          for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
              std::vector<Row> rows;
              rows.reserve(n);
              for (int w = 0; w < n; ++w) {
                rows.emplace_back(colors[static_cast<size_t>(w) * n + v],
                                  colors[static_cast<size_t>(u) * n + w]);
              }
              std::sort(rows.begin(), rows.end());
              signatures[i][static_cast<size_t>(u) * n + v] =
                  Signature{colors[static_cast<size_t>(u) * n + v],
                            std::move(rows)};
            }
          }
        }
        return Status::Ok();
      });
  X2VEC_CHECK(status.ok()) << status.ToString();

  std::map<Signature, int> dictionary;
  for (const auto& graph_signatures : signatures) {
    for (const Signature& sig : graph_signatures) dictionary.emplace(sig, 0);
  }
  int next = 0;
  for (auto& [sig, id] : dictionary) id = next++;

  DatasetState refined;
  refined.num_colors = next;
  refined.colors.resize(graphs.size());
  status = ParallelFor(
      static_cast<int64_t>(graphs.size()), 0, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          refined.colors[i].resize(signatures[i].size());
          for (size_t t = 0; t < signatures[i].size(); ++t) {
            refined.colors[i][t] = dictionary.at(signatures[i][t]);
          }
        }
        return Status::Ok();
      });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return refined;
}

}  // namespace

linalg::Matrix TwoWlKernelMatrix(const std::vector<Graph>& graphs,
                                 int rounds) {
  X2VEC_CHECK(!graphs.empty());
  X2VEC_CHECK_GE(rounds, 0);

  // Accumulate per-graph colour histograms across rounds into sparse maps
  // keyed by (round, colour).
  std::vector<std::map<std::pair<int, int>, double>> features(graphs.size());
  DatasetState state = InitialColors(graphs);
  for (int round = 0; round <= rounds; ++round) {
    for (size_t i = 0; i < graphs.size(); ++i) {
      for (int color : state.colors[i]) {
        features[i][{round, color}] += 1.0;
      }
    }
    if (round < rounds) {
      DatasetState next = Refine(graphs, state);
      if (next.num_colors == state.num_colors) {
        // Stable: later rounds only replicate histograms; include the
        // stable round once and stop.
        state = std::move(next);
        break;
      }
      state = std::move(next);
    }
  }

  const int count = static_cast<int>(graphs.size());
  linalg::Matrix gram(count, count);
  const int64_t pairs = static_cast<int64_t>(count) * (count + 1) / 2;
  const Status status = ParallelFor(pairs, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const auto [a, b] = UpperTriangleIndex(t, count);
      double total = 0.0;
      for (const auto& [key, value] : features[a]) {
        const auto it = features[b].find(key);
        if (it != features[b].end()) total += value * it->second;
      }
      gram(a, b) = total;
      gram(b, a) = total;
    }
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return gram;
}

}  // namespace x2vec::kernel
