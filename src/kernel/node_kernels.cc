#include "kernel/node_kernels.h"

#include <cmath>
#include <span>

#include "base/parallel.h"
#include "linalg/eigen.h"

namespace x2vec::kernel {
namespace {

// Applies f to the Laplacian spectrum: K = V f(Lambda) V^T. The kernel
// matrix is a node-pair similarity, so the triple product is materialised
// entry by entry over the upper triangle in parallel; each entry is an
// independent weighted dot of two eigenvector rows.
linalg::Matrix SpectralFunction(const graph::Graph& g,
                                double (*f)(double, double, int),
                                double parameter, int extra) {
  const linalg::EigenDecomposition eig =
      linalg::SymmetricEigen(Laplacian(g));
  const int n = static_cast<int>(eig.values.size());
  std::vector<double> mapped(eig.values.size());
  for (size_t i = 0; i < eig.values.size(); ++i) {
    mapped[i] = f(eig.values[i], parameter, extra);
  }
  linalg::Matrix k(n, n);
  const int64_t pairs = static_cast<int64_t>(n) * (n + 1) / 2;
  const Status status = ParallelFor(pairs, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const auto [i, j] = UpperTriangleIndex(t, n);
      const std::span<const double> vi = eig.vectors.ConstRowSpan(i);
      const std::span<const double> vj = eig.vectors.ConstRowSpan(j);
      double total = 0.0;
      for (int e = 0; e < n; ++e) total += vi[e] * mapped[e] * vj[e];
      k(i, j) = total;
      k(j, i) = total;
    }
    return Status::Ok();
  });
  X2VEC_CHECK(status.ok()) << status.ToString();
  return k;
}

}  // namespace

linalg::Matrix Laplacian(const graph::Graph& g) {
  X2VEC_CHECK(!g.directed());
  const int n = g.NumVertices();
  linalg::Matrix l(n, n);
  for (const graph::Edge& e : g.Edges()) {
    l(e.u, e.v) -= e.weight;
    l(e.v, e.u) -= e.weight;
    l(e.u, e.u) += e.weight;
    l(e.v, e.v) += e.weight;
  }
  return l;
}

linalg::Matrix DiffusionKernel(const graph::Graph& g, double beta) {
  X2VEC_CHECK_GT(beta, 0.0);
  return SpectralFunction(
      g, [](double lambda, double b, int) { return std::exp(-b * lambda); },
      beta, 0);
}

linalg::Matrix RegularizedLaplacianKernel(const graph::Graph& g,
                                          double sigma) {
  X2VEC_CHECK_GT(sigma, 0.0);
  return SpectralFunction(
      g,
      [](double lambda, double s, int) { return 1.0 / (1.0 + s * s * lambda); },
      sigma, 0);
}

linalg::Matrix PStepRandomWalkKernel(const graph::Graph& g, double a, int p) {
  X2VEC_CHECK_GE(a, 2.0);
  X2VEC_CHECK_GE(p, 1);
  return SpectralFunction(
      g,
      [](double lambda, double a_param, int steps) {
        double value = 1.0;
        for (int i = 0; i < steps; ++i) value *= (a_param - lambda);
        return value;
      },
      a, p);
}

}  // namespace x2vec::kernel
