// Knowledge-graph scenario (Section 2.3): embed a countries/capitals
// knowledge base with TransE and RESCAL, verify the paper's introduction
// example (x_Paris - x_France ~ x_Santiago - x_Chile), and evaluate link
// prediction.
//
// Run: ./build/examples/example_knowledge_graph_completion

#include <cstdio>
#include <vector>

#include "api/x2vec.h"

int main() {
  using namespace x2vec;

  Rng rng = MakeRng(314);
  const kg::KnowledgeGraph base = kg::CountriesKnowledgeGraph(16, rng);
  std::printf("knowledge graph: %d entities, %d relations, %zu facts\n",
              base.NumEntities(), base.NumRelations(), base.Triples().size());

  // --- TransE: relations as translations. -------------------------------
  kg::TransEOptions transe_options;
  transe_options.dimension = 24;
  transe_options.epochs = 500;
  const kg::TransEModel transe = kg::TrainTransE(base, transe_options, rng);

  auto entity_diff = [&](const char* a, const char* b) {
    std::vector<double> out(transe.entities.cols());
    for (int d = 0; d < transe.entities.cols(); ++d) {
      out[d] = transe.entities(base.EntityId(a), d) -
               transe.entities(base.EntityId(b), d);
    }
    return out;
  };
  const std::vector<double> paris_france = entity_diff("Paris", "France");
  const std::vector<double> santiago_chile = entity_diff("Santiago", "Chile");
  const std::vector<double> berlin_germany = entity_diff("Berlin", "Germany");
  const std::vector<double> mismatched = entity_diff("Paris", "Chile");
  std::printf("\nThe introduction's translation test:\n");
  std::printf("  ||(Paris-France)-(Santiago-Chile)||   = %.3f\n",
              linalg::Distance2(paris_france, santiago_chile));
  std::printf("  ||(Paris-France)-(Berlin-Germany)||   = %.3f\n",
              linalg::Distance2(paris_france, berlin_germany));
  std::printf("  ||(Paris-Chile)-(Santiago-Chile)||    = %.3f  (control)\n",
              linalg::Distance2(mismatched, santiago_chile));

  // Link prediction: filtered tail ranks over all capital-of facts.
  std::vector<kg::Triple> test;
  const int capital_of = base.RelationId("capital-of");
  for (const kg::Triple& t : base.Triples()) {
    if (t.relation == capital_of) test.push_back(t);
  }
  const std::vector<int> ranks = kg::TailRanks(transe, base, test);
  std::printf("\nTransE link prediction over %zu capital-of facts:\n",
              test.size());
  std::printf("  MRR = %.3f, Hits@1 = %.3f, Hits@10 = %.3f\n",
              ml::MeanReciprocalRank(ranks), ml::HitsAtK(ranks, 1),
              ml::HitsAtK(ranks, 10));

  // --- RESCAL: relations as bilinear forms. ------------------------------
  kg::RescalOptions rescal_options;
  rescal_options.dimension = 16;
  rescal_options.epochs = 300;
  rescal_options.learning_rate = 0.01;
  const kg::RescalModel rescal = kg::TrainRescal(base, rescal_options, rng);
  const int paris = base.EntityId("Paris");
  const int france = base.EntityId("France");
  const int chile = base.EntityId("Chile");
  std::printf("\nRESCAL bilinear scores (should be ~1 for facts, ~0 else):\n");
  std::printf("  score(Paris, capital-of, France) = %.3f\n",
              rescal.Score(paris, capital_of, france));
  std::printf("  score(Paris, capital-of, Chile)  = %.3f\n",
              rescal.Score(paris, capital_of, chile));
  std::printf("  reconstruction error ||XBX^T - A||^2 (all relations) = %.2f\n",
              rescal.ReconstructionError(base));
  return 0;
}
