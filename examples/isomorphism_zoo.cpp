// A tour of the paper's equivalence ladder on famous graph pairs:
// isomorphic pairs, C6 vs 2xC3 (fractionally isomorphic), the co-spectral
// star/cycle pair of Figure 6, and Cai-Fürer-Immerman pairs — each placed
// on the ladder by the exact deciders of Sections 3 and 4.
//
// Run: ./build/examples/example_isomorphism_zoo

#include <cstdio>

#include "api/x2vec.h"

namespace {

void Show(const char* name, const x2vec::graph::Graph& g,
          const x2vec::graph::Graph& h, int max_kwl) {
  const x2vec::core::ComparisonReport report =
      x2vec::core::CompareGraphs(g, h, max_kwl);
  std::printf("--- %s ---\n%s\n\n", name, report.ToString().c_str());
}

}  // namespace

int main() {
  using namespace x2vec;
  using graph::Graph;

  Rng rng = MakeRng(8);
  const Graph g = graph::ErdosRenyiGnp(7, 0.5, rng);
  Show("random graph vs a relabelling of itself", g,
       graph::Permuted(g, RandomPermutation(7, rng)), 2);

  Show("C6 vs two triangles (Section 3.1's classic)", Graph::Cycle(6),
       graph::DisjointUnion(Graph::Cycle(3), Graph::Cycle(3)), 2);

  Show("Figure 6: K_{1,4} vs C4 + K1 (co-spectral, not isomorphic)",
       Graph::Star(4),
       graph::DisjointUnion(Graph::Cycle(4), Graph(1)), 2);

  const wl::CfiPair cfi = wl::BuildCfiPair(Graph::Cycle(3));
  Show("CFI pair over the triangle (1-WL blind, 2-WL separates)",
       cfi.untwisted, cfi.twisted, 2);

  // The witness objects behind the ladder:
  const auto x = wl::FractionalIsomorphism(
      Graph::Cycle(6),
      graph::DisjointUnion(Graph::Cycle(3), Graph::Cycle(3)));
  if (x.has_value()) {
    std::printf("fractional isomorphism witness for C6 ~ 2xC3 (Thm 3.2):\n%s\n",
                x->ToString(3).c_str());
    std::printf("residual ||AX - XB||_F = %.2e\n\n",
                wl::FractionalResidual(
                    Graph::Cycle(6),
                    graph::DisjointUnion(Graph::Cycle(3), Graph::Cycle(3)),
                    *x));
  }

  // And the unfolding-tree view of WL colours (Figure 5).
  const Graph p4 = Graph::Path(4);
  std::printf("unfolding tree of P4's inner vertex, depth 2:\n%s",
              wl::RenderUnfoldingTree(p4, 1, 2).c_str());
  std::printf("round-2 colour name: %s\n",
              wl::UnfoldingTreeString(p4, 1, 2).c_str());
  return 0;
}
