// Database scenario (the paper's concluding Section 6 questions): embed
// relational data and answer queries on the embedding. We build a small
// ternary relational database, encode it as an incidence graph
// (Section 4.2), and demonstrate
//   - conjunctive-query counting as homomorphism counting,
//   - C^2 queries answered both directly and via WL colours
//     (Corollary 4.15: the rooted-hom embedding determines all C^2 facts),
//   - which distinct databases an embedding can and cannot distinguish.
//
// Run: ./build/examples/example_database_queries

#include <cstdio>

#include "api/x2vec.h"
#include "hom/tree_depth.h"

int main() {
  using namespace x2vec;
  std::printf("=== Querying embedded relational data ===\n\n");

  // A ternary schema: Supplies(supplier, part, project).
  const relational::Vocabulary schema = {{"Supplies", 3}};
  relational::Structure db(schema, 7);
  // Suppliers 0-1, parts 2-4, projects 5-6.
  db.AddTuple(0, {0, 2, 5});
  db.AddTuple(0, {0, 3, 5});
  db.AddTuple(0, {1, 3, 6});
  db.AddTuple(0, {1, 4, 6});
  db.AddTuple(0, {0, 2, 6});
  std::printf("database: universe 7, %lld Supplies facts\n\n",
              static_cast<long long>(db.TotalTuples()));

  // --- Conjunctive queries as homomorphism counting. -------------------
  // Q1: count pairs of facts sharing a supplier:
  //   Supplies(s, p1, j1) AND Supplies(s, p2, j2).
  relational::Structure q1(schema, 5);
  q1.AddTuple(0, {0, 1, 2});
  q1.AddTuple(0, {0, 3, 4});
  std::printf("Q1 (two facts, shared supplier): %lld answers\n",
              static_cast<long long>(relational::CountStructureHoms(q1, db)));

  // Q2: facts sharing supplier AND project.
  relational::Structure q2(schema, 4);
  q2.AddTuple(0, {0, 1, 2});
  q2.AddTuple(0, {0, 3, 2});
  std::printf("Q2 (shared supplier and project): %lld answers\n\n",
              static_cast<long long>(relational::CountStructureHoms(q2, db)));

  // --- The incidence encoding carries the structure. --------------------
  const graph::Graph incidence = relational::IncidenceGraph(db);
  std::printf("incidence graph: %s (7 element + %lld fact vertices)\n",
              incidence.ToString().c_str(),
              static_cast<long long>(db.TotalTuples()));
  const wl::RefinementResult colors = wl::ColorRefinement(incidence);
  std::printf("1-WL on the incidence graph: %d stable colours\n\n",
              colors.NumStableColors());

  // --- C^2 queries on the embedding (Cor 4.15). -------------------------
  // "Is there an element participating in >= 3 facts?" is a C^2 query on
  // the incidence graph; by Corollary 4.15 its answer is determined by the
  // rooted-tree-hom node embedding / WL colours.
  const logic::Formula busy = logic::Formula::CountExists(
      0, 1, logic::Formula::CountExists(1, 3, logic::Formula::Edge(0, 1)));
  std::printf("C^2 query 'some element in >= 3 facts': %s (direct eval)\n",
              busy.EvaluateSentence(incidence, 2) ? "true" : "false");
  // The same answer, read off the degree information the stable WL
  // colouring (equivalently, the rooted-hom embedding) exposes.
  bool by_colors = false;
  for (int v = 0; v < incidence.NumVertices(); ++v) {
    if (incidence.Degree(v) >= 3) by_colors = true;
  }
  std::printf("                        ... and via the WL view: %s\n\n",
              by_colors ? "true" : "false");

  // --- What the embedding cannot see. ------------------------------------
  // Two databases whose incidence graphs are 1-WL-indistinguishable but
  // non-isomorphic cannot be told apart by any C^2 query — the precise
  // 'which queries can we answer in latent space' phenomenon of Section 6.
  // Binary schema E(x,y): take C6 vs 2xC3 as edge relations.
  const relational::Vocabulary binary = {{"E", 2}};
  auto encode = [&binary](const graph::Graph& g) {
    relational::Structure s(binary, g.NumVertices());
    for (const graph::Edge& e : g.Edges()) {
      s.AddTuple(0, {e.u, e.v});
      s.AddTuple(0, {e.v, e.u});
    }
    return s;
  };
  const relational::Structure dba = encode(graph::Graph::Cycle(6));
  const relational::Structure dbb = encode(graph::DisjointUnion(
      graph::Graph::Cycle(3), graph::Graph::Cycle(3)));
  std::printf("C6-database vs 2xC3-database:\n");
  std::printf("  incidence-1-WL distinguishable: %s\n",
              relational::IncidenceWlIndistinguishable(dba, dbb) ? "no"
                                                                 : "yes");
  std::printf("  => every C^2 query answers identically on both, although\n"
              "     the triangle query (3 variables, tree depth 3) differs:\n");
  std::printf("     #triangles: %lld vs %lld\n",
              static_cast<long long>(
                  graph::CountTriangles(graph::Graph::Cycle(6))),
              static_cast<long long>(graph::CountTriangles(
                  graph::DisjointUnion(graph::Graph::Cycle(3),
                                       graph::Graph::Cycle(3)))));
  std::printf(
      "\ntakeaway (Section 6): the embedding determines exactly the C^2-\n"
      "expressible answers; richer queries need higher-dimensional\n"
      "embeddings (k-WL / bounded-treewidth hom vectors).\n");
  return 0;
}
