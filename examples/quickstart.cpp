// Quickstart for the x2vec library: build graphs, run 1-WL, count
// homomorphisms, compute embeddings and kernels, and walk the
// indistinguishability ladder — the paper's core toolkit in ~100 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart

#include <cstdio>

#include "api/x2vec.h"

int main() {
  using namespace x2vec;

  // --- 1. Graphs. -----------------------------------------------------
  graph::Graph c6 = graph::Graph::Cycle(6);
  graph::Graph triangles =
      graph::DisjointUnion(graph::Graph::Cycle(3), graph::Graph::Cycle(3));
  std::printf("G = %s, H = %s\n", c6.ToString().c_str(),
              triangles.ToString().c_str());

  // --- 2. The Weisfeiler-Leman algorithm (Section 3). ------------------
  const wl::RefinementResult refinement = wl::ColorRefinement(c6);
  std::printf("1-WL on C6: %d stable colour(s) after %d round(s)\n",
              refinement.NumStableColors(), refinement.stable_round);
  std::printf("1-WL distinguishes C6 from 2xC3? %s\n",
              wl::WlIndistinguishable(c6, triangles) ? "no" : "yes");

  // --- 3. Homomorphism vectors (Section 4). ----------------------------
  std::printf("hom(P3, C6) = %s, hom(C6, C6) = %s\n",
              linalg::Int128ToString(hom::CountPathHoms(3, c6)).c_str(),
              linalg::Int128ToString(hom::CountCycleHoms(6, c6)).c_str());
  const std::vector<hom::Pattern> family = hom::DefaultPatternFamily(20);
  const std::vector<double> embedding = hom::LogScaledHomVector(c6, family);
  std::printf("log-scaled Hom_F(C6), first 5 of %zu entries: ",
              embedding.size());
  for (int i = 0; i < 5; ++i) std::printf("%.3f ", embedding[i]);
  std::printf("\n");

  // --- 4. The indistinguishability ladder. ------------------------------
  const core::ComparisonReport report =
      core::CompareGraphs(c6, triangles, /*max_kwl=*/2);
  std::printf("%s\n", report.ToString().c_str());

  // --- 5. Node embeddings (Section 2.1 / Figure 2). --------------------
  Rng rng = MakeRng(42);
  graph::Graph social = graph::ConnectedGnp(20, 0.2, rng);
  embed::Node2VecOptions options;
  options.walks.p = 1.0;
  options.walks.q = 0.5;
  options.sgns.dimension = 8;
  const linalg::Matrix node_vectors =
      embed::Node2VecEmbedding(social, options, rng);
  std::printf("node2vec: embedded %d nodes into R^%d\n", node_vectors.rows(),
              node_vectors.cols());

  // --- 6. A WL-kernel SVM in four lines (Sections 2.4 / 3.5). ----------
  const data::GraphDataset dataset = data::ChemLikeDataset(10, 14, rng);
  const linalg::Matrix gram = kernel::NormalizeKernel(
      kernel::WlSubtreeKernelMatrix(dataset.graphs, 5));
  ml::SvmOptions svm_options;
  svm_options.c = 10.0;
  const double accuracy = ml::CrossValidatedSvmAccuracy(
      gram, dataset.labels, 4, svm_options, rng);
  std::printf("WL-kernel SVM on chem-like dataset: %.0f%% accuracy\n",
              100.0 * accuracy);
  return 0;
}
