// Social-network scenario (Section 2.1's motivation): node embeddings of a
// two-community network — spectral factorisations, DeepWalk/node2vec and
// the inductive rooted-homomorphism embedding — evaluated on community
// recovery, plus an inductive GNN (GCN) node classifier.
//
// Run: ./build/examples/example_social_network_nodes

#include <cstdio>

#include "api/x2vec.h"

namespace {

// Community purity of a 2-means clustering of the embedding rows.
double ClusterPurity(const x2vec::linalg::Matrix& embedding,
                     const std::vector<int>& communities, x2vec::Rng& rng) {
  const x2vec::ml::KMeansResult clusters =
      x2vec::ml::KMeans(embedding, 2, rng);
  int agree = 0;
  for (size_t v = 0; v < communities.size(); ++v) {
    agree += clusters.assignment[v] == communities[v] ? 1 : 0;
  }
  const int n = static_cast<int>(communities.size());
  return static_cast<double>(std::max(agree, n - agree)) / n;
}

}  // namespace

int main() {
  using namespace x2vec;

  Rng rng = MakeRng(77);
  const data::NodeClassificationDataset network =
      data::SbmNodeDataset(2, 16, 0.45, 0.04, rng);
  std::printf("social network: %s, 2 planted communities\n",
              network.graph.ToString().c_str());

  std::printf("\n%-20s  community purity (k-means on embedding)\n", "method");
  for (const core::NodeEmbeddingMethod& method :
       api::DefaultNodeMethodSuite()) {
    Rng method_rng = MakeRng(11);
    const linalg::Matrix embedding =
        method.embed(network.graph, method_rng);
    Rng cluster_rng = MakeRng(12);
    std::printf("%-20s  %.3f\n", method.name.c_str(),
                ClusterPurity(embedding, network.labels, cluster_rng));
  }

  // Inductive story (Section 2.2): train a GCN with 25% labelled nodes,
  // predict the rest.
  const int n = network.graph.NumVertices();
  const linalg::Matrix features = linalg::Matrix::Random(n, 8, 1.0, 5);
  std::vector<bool> train_mask(n, false);
  for (int v = 0; v < n; v += 4) train_mask[v] = true;
  gnn::GcnClassifier gcn(8, 16, 2, 1234);
  gnn::GcnClassifier::Options options;
  options.epochs = 300;
  options.learning_rate = 0.2;
  const double loss =
      gcn.Fit(network.graph, features, network.labels, train_mask, options);
  const std::vector<int> predictions = gcn.Predict(network.graph, features);
  std::vector<int> test_predictions;
  std::vector<int> test_labels;
  for (int v = 0; v < n; ++v) {
    if (!train_mask[v]) {
      test_predictions.push_back(predictions[v]);
      test_labels.push_back(network.labels[v]);
    }
  }
  std::printf("\nGCN (25%% labels): train loss %.3f, test accuracy %.3f\n",
              loss, ml::Accuracy(test_predictions, test_labels));

  // Link prediction flavour: embedding distance predicts adjacency.
  Rng embed_rng = MakeRng(13);
  embed::Node2VecOptions n2v;
  n2v.sgns.dimension = 16;
  const linalg::Matrix x =
      embed::Node2VecEmbedding(network.graph, n2v, embed_rng);
  double adjacent = 0.0;
  int adjacent_count = 0;
  double non_adjacent = 0.0;
  int non_adjacent_count = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double cosine = linalg::CosineSimilarity(x.Row(u), x.Row(v));
      if (network.graph.HasEdge(u, v)) {
        adjacent += cosine;
        ++adjacent_count;
      } else {
        non_adjacent += cosine;
        ++non_adjacent_count;
      }
    }
  }
  std::printf(
      "node2vec cosine: adjacent pairs %.3f vs non-adjacent %.3f\n",
      adjacent / adjacent_count, non_adjacent / non_adjacent_count);
  return 0;
}
