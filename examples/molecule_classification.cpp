// Chemoinformatics-style scenario (the paper's Section 2.4 motivation):
// classify labelled "molecules" (trees vs ring systems over C/N/O atoms)
// with every whole-graph method the library implements, and print a
// side-by-side accuracy table.
//
// Run: ./build/examples/example_molecule_classification

#include <cstdio>

#include "api/x2vec.h"

int main() {
  using namespace x2vec;

  Rng rng = MakeRng(2020);
  const data::GraphDataset dataset = data::ChemLikeDataset(15, 16, rng);
  std::printf("dataset '%s': %zu graphs, 2 classes\n", dataset.name.c_str(),
              dataset.graphs.size());
  std::printf("example graph: %s, labels present: %s\n",
              dataset.graphs[0].ToString().c_str(),
              dataset.graphs[0].HasVertexLabels() ? "yes" : "no");

  std::printf("\n%-16s  %s\n", "method", "5-fold CV accuracy");
  std::printf("%-16s  %s\n", "------", "------------------");
  for (const core::GraphKernelMethod& method : api::DefaultMethodSuite()) {
    Rng method_rng = MakeRng(7);
    const linalg::Matrix gram = kernel::NormalizeKernel(
        method.gram(dataset.graphs, method_rng));
    ml::SvmOptions options;
    options.c = 10.0;
    Rng svm_rng = MakeRng(99);
    const double accuracy = ml::CrossValidatedSvmAccuracy(
        gram, dataset.labels, 5, options, svm_rng);
    std::printf("%-16s  %.3f\n", method.name.c_str(), accuracy);
  }

  // Drill into what the WL kernel sees: the subtree features of the first
  // molecule of each class.
  const kernel::WlFeatureSet features =
      kernel::WlSubtreeFeatures(dataset.graphs, 2);
  std::printf("\nWL subtree features (t=2): dim=%lld, ",
              static_cast<long long>(features.dimension));
  std::printf("nnz(class0 example)=%zu, nnz(class1 example)=%zu\n",
              features.features.front().entries.size(),
              features.features.back().entries.size());

  // ... and what the homomorphism vector sees (Section 4's reading).
  const std::vector<hom::Pattern> family = hom::DefaultPatternFamily(20);
  const std::vector<double> tree_mol =
      hom::LogScaledHomVector(dataset.graphs.front(), family);
  const std::vector<double> ring_mol =
      hom::LogScaledHomVector(dataset.graphs.back(), family);
  std::printf("\npattern   tree-molecule   ring-molecule\n");
  for (size_t i = 0; i < family.size(); ++i) {
    if (family[i].name[0] != 'C') continue;  // Cycles tell the story.
    std::printf("%-8s  %12.3f   %12.3f\n", family[i].name.c_str(),
                tree_mol[i], ring_mol[i]);
  }
  std::printf(
      "\n(zero rows: odd cycles admit no homomorphisms into bipartite\n"
      " graphs, so hom(C_odd, tree) = 0 — the hom vector encodes\n"
      " bipartiteness exactly; even cycles fold onto single edges.)\n");
  return 0;
}
