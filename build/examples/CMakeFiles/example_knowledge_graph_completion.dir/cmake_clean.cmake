file(REMOVE_RECURSE
  "CMakeFiles/example_knowledge_graph_completion.dir/knowledge_graph_completion.cpp.o"
  "CMakeFiles/example_knowledge_graph_completion.dir/knowledge_graph_completion.cpp.o.d"
  "example_knowledge_graph_completion"
  "example_knowledge_graph_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_knowledge_graph_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
