# Empty compiler generated dependencies file for example_knowledge_graph_completion.
# This may be replaced when dependencies are built.
