file(REMOVE_RECURSE
  "CMakeFiles/example_database_queries.dir/database_queries.cpp.o"
  "CMakeFiles/example_database_queries.dir/database_queries.cpp.o.d"
  "example_database_queries"
  "example_database_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_database_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
