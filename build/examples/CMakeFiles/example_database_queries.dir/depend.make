# Empty dependencies file for example_database_queries.
# This may be replaced when dependencies are built.
