# Empty dependencies file for example_social_network_nodes.
# This may be replaced when dependencies are built.
