file(REMOVE_RECURSE
  "CMakeFiles/example_social_network_nodes.dir/social_network_nodes.cpp.o"
  "CMakeFiles/example_social_network_nodes.dir/social_network_nodes.cpp.o.d"
  "example_social_network_nodes"
  "example_social_network_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_network_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
