file(REMOVE_RECURSE
  "CMakeFiles/example_molecule_classification.dir/molecule_classification.cpp.o"
  "CMakeFiles/example_molecule_classification.dir/molecule_classification.cpp.o.d"
  "example_molecule_classification"
  "example_molecule_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_molecule_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
