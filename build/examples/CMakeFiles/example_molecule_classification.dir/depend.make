# Empty dependencies file for example_molecule_classification.
# This may be replaced when dependencies are built.
