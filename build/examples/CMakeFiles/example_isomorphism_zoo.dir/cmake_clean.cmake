file(REMOVE_RECURSE
  "CMakeFiles/example_isomorphism_zoo.dir/isomorphism_zoo.cpp.o"
  "CMakeFiles/example_isomorphism_zoo.dir/isomorphism_zoo.cpp.o.d"
  "example_isomorphism_zoo"
  "example_isomorphism_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_isomorphism_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
