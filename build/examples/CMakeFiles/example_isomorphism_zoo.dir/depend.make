# Empty dependencies file for example_isomorphism_zoo.
# This may be replaced when dependencies are built.
