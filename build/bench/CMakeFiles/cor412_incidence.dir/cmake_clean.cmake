file(REMOVE_RECURSE
  "CMakeFiles/cor412_incidence.dir/cor412_incidence.cc.o"
  "CMakeFiles/cor412_incidence.dir/cor412_incidence.cc.o.d"
  "cor412_incidence"
  "cor412_incidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cor412_incidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
