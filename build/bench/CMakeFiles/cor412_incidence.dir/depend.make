# Empty dependencies file for cor412_incidence.
# This may be replaced when dependencies are built.
