# Empty dependencies file for gnnwl_expressiveness.
# This may be replaced when dependencies are built.
