file(REMOVE_RECURSE
  "CMakeFiles/gnnwl_expressiveness.dir/gnnwl_expressiveness.cc.o"
  "CMakeFiles/gnnwl_expressiveness.dir/gnnwl_expressiveness.cc.o.d"
  "gnnwl_expressiveness"
  "gnnwl_expressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnwl_expressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
