# Empty dependencies file for kwl_cfi_hierarchy.
# This may be replaced when dependencies are built.
