file(REMOVE_RECURSE
  "CMakeFiles/kwl_cfi_hierarchy.dir/kwl_cfi_hierarchy.cc.o"
  "CMakeFiles/kwl_cfi_hierarchy.dir/kwl_cfi_hierarchy.cc.o.d"
  "kwl_cfi_hierarchy"
  "kwl_cfi_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwl_cfi_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
