file(REMOVE_RECURSE
  "CMakeFiles/fig7_path_indistinguishable.dir/fig7_path_indistinguishable.cc.o"
  "CMakeFiles/fig7_path_indistinguishable.dir/fig7_path_indistinguishable.cc.o.d"
  "fig7_path_indistinguishable"
  "fig7_path_indistinguishable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_path_indistinguishable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
