file(REMOVE_RECURSE
  "CMakeFiles/graphon_convergence.dir/graphon_convergence.cc.o"
  "CMakeFiles/graphon_convergence.dir/graphon_convergence.cc.o.d"
  "graphon_convergence"
  "graphon_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphon_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
