# Empty compiler generated dependencies file for graphon_convergence.
# This may be replaced when dependencies are built.
