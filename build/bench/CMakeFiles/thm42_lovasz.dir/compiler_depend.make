# Empty compiler generated dependencies file for thm42_lovasz.
# This may be replaced when dependencies are built.
