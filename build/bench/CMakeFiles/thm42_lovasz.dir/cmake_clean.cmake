file(REMOVE_RECURSE
  "CMakeFiles/thm42_lovasz.dir/thm42_lovasz.cc.o"
  "CMakeFiles/thm42_lovasz.dir/thm42_lovasz.cc.o.d"
  "thm42_lovasz"
  "thm42_lovasz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm42_lovasz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
