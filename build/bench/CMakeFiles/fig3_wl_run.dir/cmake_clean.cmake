file(REMOVE_RECURSE
  "CMakeFiles/fig3_wl_run.dir/fig3_wl_run.cc.o"
  "CMakeFiles/fig3_wl_run.dir/fig3_wl_run.cc.o.d"
  "fig3_wl_run"
  "fig3_wl_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_wl_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
