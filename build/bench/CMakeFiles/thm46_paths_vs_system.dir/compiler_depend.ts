# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for thm46_paths_vs_system.
