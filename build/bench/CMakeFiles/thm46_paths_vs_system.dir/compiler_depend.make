# Empty compiler generated dependencies file for thm46_paths_vs_system.
# This may be replaced when dependencies are built.
