file(REMOVE_RECURSE
  "CMakeFiles/thm46_paths_vs_system.dir/thm46_paths_vs_system.cc.o"
  "CMakeFiles/thm46_paths_vs_system.dir/thm46_paths_vs_system.cc.o.d"
  "thm46_paths_vs_system"
  "thm46_paths_vs_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm46_paths_vs_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
