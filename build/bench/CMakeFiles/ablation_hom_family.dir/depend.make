# Empty dependencies file for ablation_hom_family.
# This may be replaced when dependencies are built.
