file(REMOVE_RECURSE
  "CMakeFiles/ablation_hom_family.dir/ablation_hom_family.cc.o"
  "CMakeFiles/ablation_hom_family.dir/ablation_hom_family.cc.o.d"
  "ablation_hom_family"
  "ablation_hom_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hom_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
