file(REMOVE_RECURSE
  "CMakeFiles/fig4_matrix_wl.dir/fig4_matrix_wl.cc.o"
  "CMakeFiles/fig4_matrix_wl.dir/fig4_matrix_wl.cc.o.d"
  "fig4_matrix_wl"
  "fig4_matrix_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_matrix_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
