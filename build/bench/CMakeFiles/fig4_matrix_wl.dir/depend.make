# Empty dependencies file for fig4_matrix_wl.
# This may be replaced when dependencies are built.
