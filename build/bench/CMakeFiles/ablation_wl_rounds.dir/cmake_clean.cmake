file(REMOVE_RECURSE
  "CMakeFiles/ablation_wl_rounds.dir/ablation_wl_rounds.cc.o"
  "CMakeFiles/ablation_wl_rounds.dir/ablation_wl_rounds.cc.o.d"
  "ablation_wl_rounds"
  "ablation_wl_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wl_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
