# Empty dependencies file for ablation_wl_rounds.
# This may be replaced when dependencies are built.
