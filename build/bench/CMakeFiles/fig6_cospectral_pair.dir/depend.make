# Empty dependencies file for fig6_cospectral_pair.
# This may be replaced when dependencies are built.
