file(REMOVE_RECURSE
  "CMakeFiles/fig6_cospectral_pair.dir/fig6_cospectral_pair.cc.o"
  "CMakeFiles/fig6_cospectral_pair.dir/fig6_cospectral_pair.cc.o.d"
  "fig6_cospectral_pair"
  "fig6_cospectral_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cospectral_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
