file(REMOVE_RECURSE
  "CMakeFiles/perf_hom_counting.dir/perf_hom_counting.cc.o"
  "CMakeFiles/perf_hom_counting.dir/perf_hom_counting.cc.o.d"
  "perf_hom_counting"
  "perf_hom_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_hom_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
