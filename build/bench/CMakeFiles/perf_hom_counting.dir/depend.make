# Empty dependencies file for perf_hom_counting.
# This may be replaced when dependencies are built.
