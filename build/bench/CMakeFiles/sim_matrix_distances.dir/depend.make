# Empty dependencies file for sim_matrix_distances.
# This may be replaced when dependencies are built.
