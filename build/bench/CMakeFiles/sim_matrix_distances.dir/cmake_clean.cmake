file(REMOVE_RECURSE
  "CMakeFiles/sim_matrix_distances.dir/sim_matrix_distances.cc.o"
  "CMakeFiles/sim_matrix_distances.dir/sim_matrix_distances.cc.o.d"
  "sim_matrix_distances"
  "sim_matrix_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_matrix_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
