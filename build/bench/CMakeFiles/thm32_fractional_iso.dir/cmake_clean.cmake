file(REMOVE_RECURSE
  "CMakeFiles/thm32_fractional_iso.dir/thm32_fractional_iso.cc.o"
  "CMakeFiles/thm32_fractional_iso.dir/thm32_fractional_iso.cc.o.d"
  "thm32_fractional_iso"
  "thm32_fractional_iso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm32_fractional_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
