# Empty dependencies file for thm32_fractional_iso.
# This may be replaced when dependencies are built.
