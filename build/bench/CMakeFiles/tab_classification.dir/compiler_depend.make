# Empty compiler generated dependencies file for tab_classification.
# This may be replaced when dependencies are built.
