
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_classification.cc" "bench/CMakeFiles/tab_classification.dir/tab_classification.cc.o" "gcc" "bench/CMakeFiles/tab_classification.dir/tab_classification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_hom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
