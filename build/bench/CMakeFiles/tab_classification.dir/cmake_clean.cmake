file(REMOVE_RECURSE
  "CMakeFiles/tab_classification.dir/tab_classification.cc.o"
  "CMakeFiles/tab_classification.dir/tab_classification.cc.o.d"
  "tab_classification"
  "tab_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
