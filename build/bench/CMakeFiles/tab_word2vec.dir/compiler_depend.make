# Empty compiler generated dependencies file for tab_word2vec.
# This may be replaced when dependencies are built.
