file(REMOVE_RECURSE
  "CMakeFiles/tab_word2vec.dir/tab_word2vec.cc.o"
  "CMakeFiles/tab_word2vec.dir/tab_word2vec.cc.o.d"
  "tab_word2vec"
  "tab_word2vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_word2vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
