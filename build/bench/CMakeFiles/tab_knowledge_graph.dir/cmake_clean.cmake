file(REMOVE_RECURSE
  "CMakeFiles/tab_knowledge_graph.dir/tab_knowledge_graph.cc.o"
  "CMakeFiles/tab_knowledge_graph.dir/tab_knowledge_graph.cc.o.d"
  "tab_knowledge_graph"
  "tab_knowledge_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_knowledge_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
