# Empty compiler generated dependencies file for tab_knowledge_graph.
# This may be replaced when dependencies are built.
