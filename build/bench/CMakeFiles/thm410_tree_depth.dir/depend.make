# Empty dependencies file for thm410_tree_depth.
# This may be replaced when dependencies are built.
