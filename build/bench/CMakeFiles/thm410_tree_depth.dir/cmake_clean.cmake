file(REMOVE_RECURSE
  "CMakeFiles/thm410_tree_depth.dir/thm410_tree_depth.cc.o"
  "CMakeFiles/thm410_tree_depth.dir/thm410_tree_depth.cc.o.d"
  "thm410_tree_depth"
  "thm410_tree_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm410_tree_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
