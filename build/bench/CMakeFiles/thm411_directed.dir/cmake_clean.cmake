file(REMOVE_RECURSE
  "CMakeFiles/thm411_directed.dir/thm411_directed.cc.o"
  "CMakeFiles/thm411_directed.dir/thm411_directed.cc.o.d"
  "thm411_directed"
  "thm411_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm411_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
