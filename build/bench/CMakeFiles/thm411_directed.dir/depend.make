# Empty dependencies file for thm411_directed.
# This may be replaced when dependencies are built.
