file(REMOVE_RECURSE
  "CMakeFiles/ex41_tree_hom_counts.dir/ex41_tree_hom_counts.cc.o"
  "CMakeFiles/ex41_tree_hom_counts.dir/ex41_tree_hom_counts.cc.o.d"
  "ex41_tree_hom_counts"
  "ex41_tree_hom_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex41_tree_hom_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
