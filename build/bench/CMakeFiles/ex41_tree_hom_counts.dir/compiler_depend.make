# Empty compiler generated dependencies file for ex41_tree_hom_counts.
# This may be replaced when dependencies are built.
