file(REMOVE_RECURSE
  "CMakeFiles/thm44_trees_vs_wl.dir/thm44_trees_vs_wl.cc.o"
  "CMakeFiles/thm44_trees_vs_wl.dir/thm44_trees_vs_wl.cc.o.d"
  "thm44_trees_vs_wl"
  "thm44_trees_vs_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm44_trees_vs_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
