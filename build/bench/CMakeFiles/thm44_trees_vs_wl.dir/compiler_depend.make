# Empty compiler generated dependencies file for thm44_trees_vs_wl.
# This may be replaced when dependencies are built.
