# Empty compiler generated dependencies file for fig2_node_embeddings.
# This may be replaced when dependencies are built.
