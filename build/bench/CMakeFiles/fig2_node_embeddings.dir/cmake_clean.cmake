file(REMOVE_RECURSE
  "CMakeFiles/fig2_node_embeddings.dir/fig2_node_embeddings.cc.o"
  "CMakeFiles/fig2_node_embeddings.dir/fig2_node_embeddings.cc.o.d"
  "fig2_node_embeddings"
  "fig2_node_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_node_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
