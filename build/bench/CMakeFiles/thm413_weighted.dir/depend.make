# Empty dependencies file for thm413_weighted.
# This may be replaced when dependencies are built.
