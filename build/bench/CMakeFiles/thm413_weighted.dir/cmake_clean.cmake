file(REMOVE_RECURSE
  "CMakeFiles/thm413_weighted.dir/thm413_weighted.cc.o"
  "CMakeFiles/thm413_weighted.dir/thm413_weighted.cc.o.d"
  "thm413_weighted"
  "thm413_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm413_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
