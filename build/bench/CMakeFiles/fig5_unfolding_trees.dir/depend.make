# Empty dependencies file for fig5_unfolding_trees.
# This may be replaced when dependencies are built.
