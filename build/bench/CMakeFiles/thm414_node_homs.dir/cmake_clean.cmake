file(REMOVE_RECURSE
  "CMakeFiles/thm414_node_homs.dir/thm414_node_homs.cc.o"
  "CMakeFiles/thm414_node_homs.dir/thm414_node_homs.cc.o.d"
  "thm414_node_homs"
  "thm414_node_homs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm414_node_homs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
