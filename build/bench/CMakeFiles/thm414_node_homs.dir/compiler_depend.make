# Empty compiler generated dependencies file for thm414_node_homs.
# This may be replaced when dependencies are built.
