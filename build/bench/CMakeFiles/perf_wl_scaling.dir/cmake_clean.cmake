file(REMOVE_RECURSE
  "CMakeFiles/perf_wl_scaling.dir/perf_wl_scaling.cc.o"
  "CMakeFiles/perf_wl_scaling.dir/perf_wl_scaling.cc.o.d"
  "perf_wl_scaling"
  "perf_wl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_wl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
