# Empty compiler generated dependencies file for perf_wl_scaling.
# This may be replaced when dependencies are built.
