file(REMOVE_RECURSE
  "CMakeFiles/tab_node_classification.dir/tab_node_classification.cc.o"
  "CMakeFiles/tab_node_classification.dir/tab_node_classification.cc.o.d"
  "tab_node_classification"
  "tab_node_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_node_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
