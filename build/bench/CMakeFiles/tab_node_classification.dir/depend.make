# Empty dependencies file for tab_node_classification.
# This may be replaced when dependencies are built.
