file(REMOVE_RECURSE
  "CMakeFiles/x2vec_logic.dir/logic/counting_logic.cc.o"
  "CMakeFiles/x2vec_logic.dir/logic/counting_logic.cc.o.d"
  "libx2vec_logic.a"
  "libx2vec_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
