file(REMOVE_RECURSE
  "libx2vec_logic.a"
)
