# Empty compiler generated dependencies file for x2vec_logic.
# This may be replaced when dependencies are built.
