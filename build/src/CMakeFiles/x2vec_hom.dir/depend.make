# Empty dependencies file for x2vec_hom.
# This may be replaced when dependencies are built.
