
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hom/brute_force.cc" "src/CMakeFiles/x2vec_hom.dir/hom/brute_force.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/brute_force.cc.o.d"
  "/root/repo/src/hom/densities.cc" "src/CMakeFiles/x2vec_hom.dir/hom/densities.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/densities.cc.o.d"
  "/root/repo/src/hom/embeddings.cc" "src/CMakeFiles/x2vec_hom.dir/hom/embeddings.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/embeddings.cc.o.d"
  "/root/repo/src/hom/indistinguishability.cc" "src/CMakeFiles/x2vec_hom.dir/hom/indistinguishability.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/indistinguishability.cc.o.d"
  "/root/repo/src/hom/path_cycle.cc" "src/CMakeFiles/x2vec_hom.dir/hom/path_cycle.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/path_cycle.cc.o.d"
  "/root/repo/src/hom/subgraph_counts.cc" "src/CMakeFiles/x2vec_hom.dir/hom/subgraph_counts.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/subgraph_counts.cc.o.d"
  "/root/repo/src/hom/tree_depth.cc" "src/CMakeFiles/x2vec_hom.dir/hom/tree_depth.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/tree_depth.cc.o.d"
  "/root/repo/src/hom/tree_hom.cc" "src/CMakeFiles/x2vec_hom.dir/hom/tree_hom.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/tree_hom.cc.o.d"
  "/root/repo/src/hom/treewidth.cc" "src/CMakeFiles/x2vec_hom.dir/hom/treewidth.cc.o" "gcc" "src/CMakeFiles/x2vec_hom.dir/hom/treewidth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
