file(REMOVE_RECURSE
  "CMakeFiles/x2vec_hom.dir/hom/brute_force.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/brute_force.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/densities.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/densities.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/embeddings.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/embeddings.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/indistinguishability.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/indistinguishability.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/path_cycle.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/path_cycle.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/subgraph_counts.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/subgraph_counts.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/tree_depth.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/tree_depth.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/tree_hom.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/tree_hom.cc.o.d"
  "CMakeFiles/x2vec_hom.dir/hom/treewidth.cc.o"
  "CMakeFiles/x2vec_hom.dir/hom/treewidth.cc.o.d"
  "libx2vec_hom.a"
  "libx2vec_hom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_hom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
