file(REMOVE_RECURSE
  "libx2vec_hom.a"
)
