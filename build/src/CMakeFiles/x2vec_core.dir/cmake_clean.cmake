file(REMOVE_RECURSE
  "CMakeFiles/x2vec_core.dir/core/compare.cc.o"
  "CMakeFiles/x2vec_core.dir/core/compare.cc.o.d"
  "CMakeFiles/x2vec_core.dir/core/registry.cc.o"
  "CMakeFiles/x2vec_core.dir/core/registry.cc.o.d"
  "libx2vec_core.a"
  "libx2vec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
