# Empty compiler generated dependencies file for x2vec_core.
# This may be replaced when dependencies are built.
