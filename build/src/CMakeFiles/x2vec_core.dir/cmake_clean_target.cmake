file(REMOVE_RECURSE
  "libx2vec_core.a"
)
