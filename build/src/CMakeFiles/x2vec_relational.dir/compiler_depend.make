# Empty compiler generated dependencies file for x2vec_relational.
# This may be replaced when dependencies are built.
