file(REMOVE_RECURSE
  "libx2vec_relational.a"
)
