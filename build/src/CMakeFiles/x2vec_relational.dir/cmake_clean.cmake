file(REMOVE_RECURSE
  "CMakeFiles/x2vec_relational.dir/relational/structure.cc.o"
  "CMakeFiles/x2vec_relational.dir/relational/structure.cc.o.d"
  "libx2vec_relational.a"
  "libx2vec_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
