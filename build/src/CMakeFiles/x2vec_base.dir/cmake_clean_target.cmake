file(REMOVE_RECURSE
  "libx2vec_base.a"
)
