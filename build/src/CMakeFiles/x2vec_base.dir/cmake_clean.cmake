file(REMOVE_RECURSE
  "CMakeFiles/x2vec_base.dir/base/check.cc.o"
  "CMakeFiles/x2vec_base.dir/base/check.cc.o.d"
  "CMakeFiles/x2vec_base.dir/base/rng.cc.o"
  "CMakeFiles/x2vec_base.dir/base/rng.cc.o.d"
  "CMakeFiles/x2vec_base.dir/base/status.cc.o"
  "CMakeFiles/x2vec_base.dir/base/status.cc.o.d"
  "libx2vec_base.a"
  "libx2vec_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
