# Empty dependencies file for x2vec_base.
# This may be replaced when dependencies are built.
