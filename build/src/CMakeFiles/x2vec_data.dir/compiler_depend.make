# Empty compiler generated dependencies file for x2vec_data.
# This may be replaced when dependencies are built.
