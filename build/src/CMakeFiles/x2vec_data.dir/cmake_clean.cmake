file(REMOVE_RECURSE
  "CMakeFiles/x2vec_data.dir/data/datasets.cc.o"
  "CMakeFiles/x2vec_data.dir/data/datasets.cc.o.d"
  "CMakeFiles/x2vec_data.dir/data/io.cc.o"
  "CMakeFiles/x2vec_data.dir/data/io.cc.o.d"
  "libx2vec_data.a"
  "libx2vec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
