file(REMOVE_RECURSE
  "libx2vec_data.a"
)
