file(REMOVE_RECURSE
  "libx2vec_ml.a"
)
