file(REMOVE_RECURSE
  "CMakeFiles/x2vec_ml.dir/ml/logistic.cc.o"
  "CMakeFiles/x2vec_ml.dir/ml/logistic.cc.o.d"
  "CMakeFiles/x2vec_ml.dir/ml/metrics.cc.o"
  "CMakeFiles/x2vec_ml.dir/ml/metrics.cc.o.d"
  "CMakeFiles/x2vec_ml.dir/ml/neighbors.cc.o"
  "CMakeFiles/x2vec_ml.dir/ml/neighbors.cc.o.d"
  "CMakeFiles/x2vec_ml.dir/ml/pca.cc.o"
  "CMakeFiles/x2vec_ml.dir/ml/pca.cc.o.d"
  "CMakeFiles/x2vec_ml.dir/ml/svm.cc.o"
  "CMakeFiles/x2vec_ml.dir/ml/svm.cc.o.d"
  "CMakeFiles/x2vec_ml.dir/ml/validation.cc.o"
  "CMakeFiles/x2vec_ml.dir/ml/validation.cc.o.d"
  "libx2vec_ml.a"
  "libx2vec_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
