
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/logistic.cc" "src/CMakeFiles/x2vec_ml.dir/ml/logistic.cc.o" "gcc" "src/CMakeFiles/x2vec_ml.dir/ml/logistic.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/x2vec_ml.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/x2vec_ml.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/neighbors.cc" "src/CMakeFiles/x2vec_ml.dir/ml/neighbors.cc.o" "gcc" "src/CMakeFiles/x2vec_ml.dir/ml/neighbors.cc.o.d"
  "/root/repo/src/ml/pca.cc" "src/CMakeFiles/x2vec_ml.dir/ml/pca.cc.o" "gcc" "src/CMakeFiles/x2vec_ml.dir/ml/pca.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/CMakeFiles/x2vec_ml.dir/ml/svm.cc.o" "gcc" "src/CMakeFiles/x2vec_ml.dir/ml/svm.cc.o.d"
  "/root/repo/src/ml/validation.cc" "src/CMakeFiles/x2vec_ml.dir/ml/validation.cc.o" "gcc" "src/CMakeFiles/x2vec_ml.dir/ml/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
