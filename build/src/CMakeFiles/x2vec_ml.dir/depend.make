# Empty dependencies file for x2vec_ml.
# This may be replaced when dependencies are built.
