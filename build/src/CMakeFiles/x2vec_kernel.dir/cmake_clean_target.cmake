file(REMOVE_RECURSE
  "libx2vec_kernel.a"
)
