
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/graph_kernels.cc" "src/CMakeFiles/x2vec_kernel.dir/kernel/graph_kernels.cc.o" "gcc" "src/CMakeFiles/x2vec_kernel.dir/kernel/graph_kernels.cc.o.d"
  "/root/repo/src/kernel/kwl_kernel.cc" "src/CMakeFiles/x2vec_kernel.dir/kernel/kwl_kernel.cc.o" "gcc" "src/CMakeFiles/x2vec_kernel.dir/kernel/kwl_kernel.cc.o.d"
  "/root/repo/src/kernel/node_kernels.cc" "src/CMakeFiles/x2vec_kernel.dir/kernel/node_kernels.cc.o" "gcc" "src/CMakeFiles/x2vec_kernel.dir/kernel/node_kernels.cc.o.d"
  "/root/repo/src/kernel/wl_kernel.cc" "src/CMakeFiles/x2vec_kernel.dir/kernel/wl_kernel.cc.o" "gcc" "src/CMakeFiles/x2vec_kernel.dir/kernel/wl_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_hom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
