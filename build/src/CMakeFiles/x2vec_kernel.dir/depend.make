# Empty dependencies file for x2vec_kernel.
# This may be replaced when dependencies are built.
