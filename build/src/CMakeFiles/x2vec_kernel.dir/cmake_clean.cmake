file(REMOVE_RECURSE
  "CMakeFiles/x2vec_kernel.dir/kernel/graph_kernels.cc.o"
  "CMakeFiles/x2vec_kernel.dir/kernel/graph_kernels.cc.o.d"
  "CMakeFiles/x2vec_kernel.dir/kernel/kwl_kernel.cc.o"
  "CMakeFiles/x2vec_kernel.dir/kernel/kwl_kernel.cc.o.d"
  "CMakeFiles/x2vec_kernel.dir/kernel/node_kernels.cc.o"
  "CMakeFiles/x2vec_kernel.dir/kernel/node_kernels.cc.o.d"
  "CMakeFiles/x2vec_kernel.dir/kernel/wl_kernel.cc.o"
  "CMakeFiles/x2vec_kernel.dir/kernel/wl_kernel.cc.o.d"
  "libx2vec_kernel.a"
  "libx2vec_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
