# Empty dependencies file for x2vec_embed.
# This may be replaced when dependencies are built.
