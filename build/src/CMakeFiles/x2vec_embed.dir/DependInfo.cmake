
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/corpus.cc" "src/CMakeFiles/x2vec_embed.dir/embed/corpus.cc.o" "gcc" "src/CMakeFiles/x2vec_embed.dir/embed/corpus.cc.o.d"
  "/root/repo/src/embed/factorization.cc" "src/CMakeFiles/x2vec_embed.dir/embed/factorization.cc.o" "gcc" "src/CMakeFiles/x2vec_embed.dir/embed/factorization.cc.o.d"
  "/root/repo/src/embed/graph2vec.cc" "src/CMakeFiles/x2vec_embed.dir/embed/graph2vec.cc.o" "gcc" "src/CMakeFiles/x2vec_embed.dir/embed/graph2vec.cc.o.d"
  "/root/repo/src/embed/node_embeddings.cc" "src/CMakeFiles/x2vec_embed.dir/embed/node_embeddings.cc.o" "gcc" "src/CMakeFiles/x2vec_embed.dir/embed/node_embeddings.cc.o.d"
  "/root/repo/src/embed/sgns.cc" "src/CMakeFiles/x2vec_embed.dir/embed/sgns.cc.o" "gcc" "src/CMakeFiles/x2vec_embed.dir/embed/sgns.cc.o.d"
  "/root/repo/src/embed/walks.cc" "src/CMakeFiles/x2vec_embed.dir/embed/walks.cc.o" "gcc" "src/CMakeFiles/x2vec_embed.dir/embed/walks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
