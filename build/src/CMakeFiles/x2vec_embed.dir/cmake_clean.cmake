file(REMOVE_RECURSE
  "CMakeFiles/x2vec_embed.dir/embed/corpus.cc.o"
  "CMakeFiles/x2vec_embed.dir/embed/corpus.cc.o.d"
  "CMakeFiles/x2vec_embed.dir/embed/factorization.cc.o"
  "CMakeFiles/x2vec_embed.dir/embed/factorization.cc.o.d"
  "CMakeFiles/x2vec_embed.dir/embed/graph2vec.cc.o"
  "CMakeFiles/x2vec_embed.dir/embed/graph2vec.cc.o.d"
  "CMakeFiles/x2vec_embed.dir/embed/node_embeddings.cc.o"
  "CMakeFiles/x2vec_embed.dir/embed/node_embeddings.cc.o.d"
  "CMakeFiles/x2vec_embed.dir/embed/sgns.cc.o"
  "CMakeFiles/x2vec_embed.dir/embed/sgns.cc.o.d"
  "CMakeFiles/x2vec_embed.dir/embed/walks.cc.o"
  "CMakeFiles/x2vec_embed.dir/embed/walks.cc.o.d"
  "libx2vec_embed.a"
  "libx2vec_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
