file(REMOVE_RECURSE
  "libx2vec_embed.a"
)
