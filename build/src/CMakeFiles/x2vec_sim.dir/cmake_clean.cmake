file(REMOVE_RECURSE
  "CMakeFiles/x2vec_sim.dir/sim/graph_distance.cc.o"
  "CMakeFiles/x2vec_sim.dir/sim/graph_distance.cc.o.d"
  "CMakeFiles/x2vec_sim.dir/sim/matrix_norms.cc.o"
  "CMakeFiles/x2vec_sim.dir/sim/matrix_norms.cc.o.d"
  "libx2vec_sim.a"
  "libx2vec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
