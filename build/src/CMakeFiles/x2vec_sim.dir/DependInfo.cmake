
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/graph_distance.cc" "src/CMakeFiles/x2vec_sim.dir/sim/graph_distance.cc.o" "gcc" "src/CMakeFiles/x2vec_sim.dir/sim/graph_distance.cc.o.d"
  "/root/repo/src/sim/matrix_norms.cc" "src/CMakeFiles/x2vec_sim.dir/sim/matrix_norms.cc.o" "gcc" "src/CMakeFiles/x2vec_sim.dir/sim/matrix_norms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
