# Empty dependencies file for x2vec_sim.
# This may be replaced when dependencies are built.
