file(REMOVE_RECURSE
  "libx2vec_sim.a"
)
