
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/knowledge_graph.cc" "src/CMakeFiles/x2vec_kg.dir/kg/knowledge_graph.cc.o" "gcc" "src/CMakeFiles/x2vec_kg.dir/kg/knowledge_graph.cc.o.d"
  "/root/repo/src/kg/rescal.cc" "src/CMakeFiles/x2vec_kg.dir/kg/rescal.cc.o" "gcc" "src/CMakeFiles/x2vec_kg.dir/kg/rescal.cc.o.d"
  "/root/repo/src/kg/transe.cc" "src/CMakeFiles/x2vec_kg.dir/kg/transe.cc.o" "gcc" "src/CMakeFiles/x2vec_kg.dir/kg/transe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
