file(REMOVE_RECURSE
  "libx2vec_kg.a"
)
