# Empty dependencies file for x2vec_kg.
# This may be replaced when dependencies are built.
