file(REMOVE_RECURSE
  "CMakeFiles/x2vec_kg.dir/kg/knowledge_graph.cc.o"
  "CMakeFiles/x2vec_kg.dir/kg/knowledge_graph.cc.o.d"
  "CMakeFiles/x2vec_kg.dir/kg/rescal.cc.o"
  "CMakeFiles/x2vec_kg.dir/kg/rescal.cc.o.d"
  "CMakeFiles/x2vec_kg.dir/kg/transe.cc.o"
  "CMakeFiles/x2vec_kg.dir/kg/transe.cc.o.d"
  "libx2vec_kg.a"
  "libx2vec_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
