file(REMOVE_RECURSE
  "CMakeFiles/x2vec_gnn.dir/gnn/gcn.cc.o"
  "CMakeFiles/x2vec_gnn.dir/gnn/gcn.cc.o.d"
  "CMakeFiles/x2vec_gnn.dir/gnn/graphsage.cc.o"
  "CMakeFiles/x2vec_gnn.dir/gnn/graphsage.cc.o.d"
  "CMakeFiles/x2vec_gnn.dir/gnn/higher_order.cc.o"
  "CMakeFiles/x2vec_gnn.dir/gnn/higher_order.cc.o.d"
  "CMakeFiles/x2vec_gnn.dir/gnn/layers.cc.o"
  "CMakeFiles/x2vec_gnn.dir/gnn/layers.cc.o.d"
  "libx2vec_gnn.a"
  "libx2vec_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
