file(REMOVE_RECURSE
  "libx2vec_gnn.a"
)
