# Empty compiler generated dependencies file for x2vec_gnn.
# This may be replaced when dependencies are built.
