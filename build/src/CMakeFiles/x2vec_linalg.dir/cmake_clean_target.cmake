file(REMOVE_RECURSE
  "libx2vec_linalg.a"
)
