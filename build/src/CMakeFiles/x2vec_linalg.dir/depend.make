# Empty dependencies file for x2vec_linalg.
# This may be replaced when dependencies are built.
