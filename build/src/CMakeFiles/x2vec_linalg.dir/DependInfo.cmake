
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/charpoly.cc" "src/CMakeFiles/x2vec_linalg.dir/linalg/charpoly.cc.o" "gcc" "src/CMakeFiles/x2vec_linalg.dir/linalg/charpoly.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/x2vec_linalg.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/x2vec_linalg.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/hungarian.cc" "src/CMakeFiles/x2vec_linalg.dir/linalg/hungarian.cc.o" "gcc" "src/CMakeFiles/x2vec_linalg.dir/linalg/hungarian.cc.o.d"
  "/root/repo/src/linalg/linear_system.cc" "src/CMakeFiles/x2vec_linalg.dir/linalg/linear_system.cc.o" "gcc" "src/CMakeFiles/x2vec_linalg.dir/linalg/linear_system.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/x2vec_linalg.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/x2vec_linalg.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/rational.cc" "src/CMakeFiles/x2vec_linalg.dir/linalg/rational.cc.o" "gcc" "src/CMakeFiles/x2vec_linalg.dir/linalg/rational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
