file(REMOVE_RECURSE
  "CMakeFiles/x2vec_linalg.dir/linalg/charpoly.cc.o"
  "CMakeFiles/x2vec_linalg.dir/linalg/charpoly.cc.o.d"
  "CMakeFiles/x2vec_linalg.dir/linalg/eigen.cc.o"
  "CMakeFiles/x2vec_linalg.dir/linalg/eigen.cc.o.d"
  "CMakeFiles/x2vec_linalg.dir/linalg/hungarian.cc.o"
  "CMakeFiles/x2vec_linalg.dir/linalg/hungarian.cc.o.d"
  "CMakeFiles/x2vec_linalg.dir/linalg/linear_system.cc.o"
  "CMakeFiles/x2vec_linalg.dir/linalg/linear_system.cc.o.d"
  "CMakeFiles/x2vec_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/x2vec_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/x2vec_linalg.dir/linalg/rational.cc.o"
  "CMakeFiles/x2vec_linalg.dir/linalg/rational.cc.o.d"
  "libx2vec_linalg.a"
  "libx2vec_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
