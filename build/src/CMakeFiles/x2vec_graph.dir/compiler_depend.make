# Empty compiler generated dependencies file for x2vec_graph.
# This may be replaced when dependencies are built.
