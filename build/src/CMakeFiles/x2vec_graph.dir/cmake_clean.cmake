file(REMOVE_RECURSE
  "CMakeFiles/x2vec_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/x2vec_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/x2vec_graph.dir/graph/enumeration.cc.o"
  "CMakeFiles/x2vec_graph.dir/graph/enumeration.cc.o.d"
  "CMakeFiles/x2vec_graph.dir/graph/generators.cc.o"
  "CMakeFiles/x2vec_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/x2vec_graph.dir/graph/graph.cc.o"
  "CMakeFiles/x2vec_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/x2vec_graph.dir/graph/graph6.cc.o"
  "CMakeFiles/x2vec_graph.dir/graph/graph6.cc.o.d"
  "CMakeFiles/x2vec_graph.dir/graph/isomorphism.cc.o"
  "CMakeFiles/x2vec_graph.dir/graph/isomorphism.cc.o.d"
  "libx2vec_graph.a"
  "libx2vec_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
