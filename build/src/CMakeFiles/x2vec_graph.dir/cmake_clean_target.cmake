file(REMOVE_RECURSE
  "libx2vec_graph.a"
)
