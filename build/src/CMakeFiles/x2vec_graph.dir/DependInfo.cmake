
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/x2vec_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/x2vec_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/enumeration.cc" "src/CMakeFiles/x2vec_graph.dir/graph/enumeration.cc.o" "gcc" "src/CMakeFiles/x2vec_graph.dir/graph/enumeration.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/x2vec_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/x2vec_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/x2vec_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/x2vec_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph6.cc" "src/CMakeFiles/x2vec_graph.dir/graph/graph6.cc.o" "gcc" "src/CMakeFiles/x2vec_graph.dir/graph/graph6.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "src/CMakeFiles/x2vec_graph.dir/graph/isomorphism.cc.o" "gcc" "src/CMakeFiles/x2vec_graph.dir/graph/isomorphism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
