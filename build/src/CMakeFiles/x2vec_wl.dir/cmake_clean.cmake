file(REMOVE_RECURSE
  "CMakeFiles/x2vec_wl.dir/wl/cfi.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/cfi.cc.o.d"
  "CMakeFiles/x2vec_wl.dir/wl/color_refinement.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/color_refinement.cc.o.d"
  "CMakeFiles/x2vec_wl.dir/wl/fractional.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/fractional.cc.o.d"
  "CMakeFiles/x2vec_wl.dir/wl/kwl.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/kwl.cc.o.d"
  "CMakeFiles/x2vec_wl.dir/wl/unfolding_tree.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/unfolding_tree.cc.o.d"
  "CMakeFiles/x2vec_wl.dir/wl/weighted_wl.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/weighted_wl.cc.o.d"
  "CMakeFiles/x2vec_wl.dir/wl/wl_hash.cc.o"
  "CMakeFiles/x2vec_wl.dir/wl/wl_hash.cc.o.d"
  "libx2vec_wl.a"
  "libx2vec_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2vec_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
