file(REMOVE_RECURSE
  "libx2vec_wl.a"
)
