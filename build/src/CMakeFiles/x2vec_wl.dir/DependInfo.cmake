
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/cfi.cc" "src/CMakeFiles/x2vec_wl.dir/wl/cfi.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/cfi.cc.o.d"
  "/root/repo/src/wl/color_refinement.cc" "src/CMakeFiles/x2vec_wl.dir/wl/color_refinement.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/color_refinement.cc.o.d"
  "/root/repo/src/wl/fractional.cc" "src/CMakeFiles/x2vec_wl.dir/wl/fractional.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/fractional.cc.o.d"
  "/root/repo/src/wl/kwl.cc" "src/CMakeFiles/x2vec_wl.dir/wl/kwl.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/kwl.cc.o.d"
  "/root/repo/src/wl/unfolding_tree.cc" "src/CMakeFiles/x2vec_wl.dir/wl/unfolding_tree.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/unfolding_tree.cc.o.d"
  "/root/repo/src/wl/weighted_wl.cc" "src/CMakeFiles/x2vec_wl.dir/wl/weighted_wl.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/weighted_wl.cc.o.d"
  "/root/repo/src/wl/wl_hash.cc" "src/CMakeFiles/x2vec_wl.dir/wl/wl_hash.cc.o" "gcc" "src/CMakeFiles/x2vec_wl.dir/wl/wl_hash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/x2vec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/x2vec_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
