# Empty dependencies file for x2vec_wl.
# This may be replaced when dependencies are built.
