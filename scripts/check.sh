#!/usr/bin/env bash
# One-shot pre-PR gate for x2vec. Runs, in order:
#
#   1. CMake configure (Release, warnings-as-errors, compile-commands export)
#   2. full build (library, tests, benches, examples, x2vec_lint)
#   3. ctest (the whole suite, which includes `-L lint`)
#   4. ctest -L metrics (observability + sampling-fidelity suite, re-run
#      on its own so a regression there is called out by name)
#   5. ctest -L kernels (span-kernel unit tests + bit-identity goldens,
#      re-run on its own so a numeric drift is called out by name)
#   6. ctest -L parity (backend-parity suite: vectorized/float32 kernel
#      backends vs the generic golden reference, re-run on its own so a
#      tolerance breach is called out by name)
#   7. ctest -L persist (durable I/O + checkpoint/resume crash-safety
#      suite, re-run on its own so a persistence regression is called out
#      by name)
#   8. ctest -L serve (embedding-serving suite: index backends, query
#      engine, admission control, batch-replay determinism) followed by a
#      tab_serving smoke replay, which must report every batch
#      bit-identical and write run_report.json
#   9. ctest -L stream (out-of-core CSR backend + streaming walk-corpus
#      pipeline suite, re-run on its own so a streaming regression is
#      called out by name) followed by a perf_stream --smoke run, which
#      must stream a DeepWalk training pass over a generated 10M-edge CSR
#      graph without materialising the walk corpus
#  10. x2vec_lint over src/ tests/ bench/ tools/ examples/ — per-file
#      rules plus the whole-program passes (include cycles, layering
#      against tools/lint/layers.txt, metric registry); also exports the
#      module dependency DAG to $BUILD_DIR/deps.json and fails if the
#      checked-in docs/metrics.md is stale
#  11. clang-tidy over src/ — skipped with a notice when not installed
#
# Usage:
#   scripts/check.sh [--sanitize=asan|tsan|ubsan] [--build-dir=DIR] [-j N]
#
# --sanitize forwards the X2VEC_SANITIZE shorthand to CMake and switches to
# a per-sanitizer build directory (build-asan/, build-tsan/, ...), so a
# sanitized gate never clobbers the plain one. Exits nonzero on the first
# failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=""
BUILD_DIR=""
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize=*) SANITIZE="${1#--sanitize=}" ;;
    --build-dir=*) BUILD_DIR="${1#--build-dir=}" ;;
    -j) JOBS="$2"; shift ;;
    -j*) JOBS="${1#-j}" ;;
    -h|--help)
      sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "check.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

case "$SANITIZE" in
  ""|asan|tsan|ubsan) ;;
  *) echo "check.sh: --sanitize must be asan, tsan or ubsan" >&2; exit 2 ;;
esac

if [[ -z "$BUILD_DIR" ]]; then
  BUILD_DIR="build"
  [[ -n "$SANITIZE" ]] && BUILD_DIR="build-$SANITIZE"
fi

step() { echo; echo "== check.sh: $* =="; }

CMAKE_ARGS=(
  -DCMAKE_BUILD_TYPE=Release
  -DX2VEC_WERROR=ON
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
)
[[ -n "$SANITIZE" ]] && CMAKE_ARGS+=("-DX2VEC_SANITIZE=$SANITIZE")

step "configure ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"

step "build (-j$JOBS)"
cmake --build "$BUILD_DIR" -j "$JOBS"

step "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

step "ctest -L metrics (observability + sampling fidelity)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L metrics

step "ctest -L kernels (span kernels + bit-identity goldens)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L kernels

step "ctest -L parity (kernel backends vs generic golden reference)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L parity

step "ctest -L persist (durable I/O + checkpoint/resume)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L persist

step "ctest -L serve (embedding serving: index, engine, admission)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L serve

step "tab_serving smoke replay (batch determinism + run_report.json)"
SERVE_SMOKE_DIR="$BUILD_DIR/serve-smoke"
mkdir -p "$SERVE_SMOKE_DIR"
SERVE_SMOKE_OUT="$(cd "$SERVE_SMOKE_DIR" && "../bench/tab_serving")"
echo "$SERVE_SMOKE_OUT" | tail -n 12
if echo "$SERVE_SMOKE_OUT" | grep -q "DIVERGED"; then
  echo "check.sh: tab_serving replay diverged across thread counts" >&2
  exit 1
fi
if [[ ! -f "$SERVE_SMOKE_DIR/run_report.json" ]]; then
  echo "check.sh: tab_serving did not write run_report.json" >&2
  exit 1
fi

step "ctest -L stream (out-of-core CSR + streaming walk pipeline)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L stream

step "perf_stream smoke (10M-edge streaming DeepWalk, no corpus)"
"$BUILD_DIR/bench/perf_stream" --smoke

step "x2vec_lint src/ tests/ bench/ tools/ examples/"
"$BUILD_DIR/tools/lint/x2vec_lint" --graph="$BUILD_DIR/deps.json" \
  --metrics-doc="$BUILD_DIR/metrics.md" src tests bench tools examples
if ! diff -u docs/metrics.md "$BUILD_DIR/metrics.md"; then
  echo "check.sh: docs/metrics.md is stale; regenerate with" >&2
  echo "  $BUILD_DIR/tools/lint/x2vec_lint --metrics-doc=docs/metrics.md src tests bench tools examples" >&2
  exit 1
fi

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy"
  cmake --build "$BUILD_DIR" --target tidy
else
  step "clang-tidy not installed; skipping (install LLVM tools to enable)"
fi

step "all gates passed"
